package verify

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"scaldtv/internal/assertion"
	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/serr"
	"scaldtv/internal/tape"
	"scaldtv/internal/values"
)

// Options tunes the verification run.
type Options struct {
	// MaxPasses caps the number of primitive evaluations per case.  Zero
	// means the default of 50 evaluations per primitive (at least 1000).
	MaxPasses int
	// KeepWaves retains the final waveform of every net in each
	// CaseResult (needed for the timing summary listing).
	KeepWaves bool
	// Margins collects the outcome of every constraint evaluation —
	// passing or failing — so slack listings and cycle-time estimates can
	// be produced (§1.1).
	Margins bool
	// Force overrides the initial waveform of undriven nets, in place of
	// their assertion or the all-stable default.  It supports hierarchical
	// flows (driving a section with waveforms computed elsewhere) and the
	// soundness tests that compare symbolic against concrete behaviour.
	Force map[netlist.NetID]values.Waveform
	// Workers bounds the number of case-analysis cycles evaluated
	// concurrently.  Zero means runtime.GOMAXPROCS(0).  Workers == 1
	// preserves the paper's sequential schedule, where each case after
	// the first reevaluates only its affected cone incrementally (§2.7,
	// §3.3.2).  Workers > 1 relaxes every case independently from a
	// snapshot of the initialised state: violations, margins and kept
	// waveforms are identical to the sequential run and deterministic
	// across worker counts, but the per-case Events/PrimEvals counters
	// reflect full rather than incremental relaxation.  On designs with
	// few cases (or deep sharing between consecutive case cones) the
	// sequential incremental schedule can do strictly less work.
	Workers int
	// IntraWorkers bounds the number of workers evaluating primitives
	// concurrently *within* one case.  0 or 1 preserves the paper's
	// serial event-driven worklist (§2.9).  Greater values switch the
	// relaxation to levelized wavefront scheduling: the primitive graph
	// is condensed into strongly connected components with sequential
	// edges cut (netlist.Levelization), acyclic levels evaluate their
	// ready components in parallel, feedback components converge with a
	// scoped serial worklist, and components containing storage run in a
	// serial phase at the end of each sweep.  Because the relaxation is a
	// confluent fixed-point iteration from an identical seed, the
	// converged waveforms — and hence violations, margins, kept waves and
	// the cross-reference — are bit-identical to the serial engine for
	// every IntraWorkers value; only wall-clock time and the cache
	// hit/miss split vary.  Composes with Workers: each case worker runs
	// its own intra-case pool.
	IntraWorkers int
	// NoCache disables evaluation memoization.  By default (zero value)
	// the verifier interns waveforms so equal ones share storage and
	// memoizes primitive evaluations on (kind, parameters, processed
	// input identities), so relaxation passes and case-analysis re-runs
	// skip Prim calls whose inputs are unchanged.  Cache keys are exact —
	// interned-handle equality coincides with semantic waveform equality
	// — so results are bit-identical with the cache on or off, for any
	// Workers value; only the Stats cache counters differ.  The scaldtv
	// driver exposes this as the -cache=false escape hatch.
	NoCache bool
	// NoTape disables the compiled evaluation tape.  By default (zero
	// value, and unless NoCache also disables the interner the tape's
	// memo tables require) the design is lowered once to a flat
	// instruction tape (internal/tape) — opcode dispatch through packed
	// seven-value truth tables, level-span wavefront sweeps, precompiled
	// interned seeds, and persistent evaluation and constraint-site memos
	// that survive across runs on the design's engine cache.  Reports are
	// bit-identical with the tape on or off, for any Workers and
	// IntraWorkers values; only timing and the Stats cache counters
	// differ (with the tape, cache counters are cumulative over every run
	// that shared the program).  The scaldtv driver exposes this as the
	// -tape=false escape hatch.
	NoTape bool
	// Explore requests automatic case exploration: after a converged run,
	// U/C-poisoned constraint sites are discharged by searching control-
	// signal splits (the internal/explore engine, dispatched by the
	// scaldtv entry points), and the result carries an Exploration
	// report.  The verify package itself only declares the option — it
	// participates in the store fingerprint — and the report data.
	Explore bool
	// Delays selects the delay model — nil (or MinMaxDelays) for the
	// paper's worst-case interval propagation, StatisticalDelays for the
	// deterministic quadrature post-pass reporting each constraint
	// site's violation *probability* in Result.SiteProbs, AnalyticDelays
	// to pin the design's analytic delay functions at one parameter
	// point and retain the symbolic per-site margin functions in
	// Result.MarginSurface.  No RNG is involved anywhere: all three
	// models produce byte-deterministic reports.  Construct models with
	// their typed constructors (or ParseDelayModel for flag spellings);
	// the DelayWorstCase and DelayStatistical variables keep the former
	// constant spellings working.
	Delays DelayModel
}

// useTape reports whether this run compiles and sweeps the evaluation
// tape.  The tape's memo tables are built on interned handles, so NoCache
// implies the interpreter.
func (o Options) useTape() bool { return !o.NoTape && !o.NoCache }

// intraWorkers resolves the effective intra-case worker count: 1 selects
// the serial worklist engine, anything greater the wavefront scheduler.
func (o Options) intraWorkers() int {
	if o.IntraWorkers < 1 {
		return 1
	}
	return o.IntraWorkers
}

// fillWavefrontStats records the levelization shape in the stats when the
// wavefront engine is selected — explicitly by IntraWorkers > 1, or
// implicitly by the tape, which always sweeps level spans.
func (o Options) fillWavefrontStats(d *netlist.Design, s *Stats) {
	if o.intraWorkers() <= 1 && !o.useTape() {
		return
	}
	lev := d.Levelization()
	s.IntraWorkers = o.intraWorkers()
	s.Levels = len(lev.Levels)
	s.SCCs = len(lev.Comps)
	s.FeedbackSCCs = lev.Feedback
}

// workers resolves the effective worker count for a case list.
func (o Options) workers(nCases int) int {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > nCases {
		n = nCases
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Stats aggregates the execution statistics the paper reports in
// Table 3-1.  Events, PrimEvals, VerifyTime and CheckTime are *work*
// totals summed over every case; under concurrent case evaluation the
// summed phase times can exceed WallTime, the elapsed wall-clock time of
// the whole case-evaluation phase.
type Stats struct {
	Primitives int // driving + checking primitive instances
	Nets       int // signal bits (value lists stored)
	Events     int // output-value changes processed, summed over all cases
	PrimEvals  int // primitive evaluations scheduled, summed over all cases
	Cases      int // case-analysis cycles simulated
	Workers    int // case-evaluation workers actually used

	// Wavefront-scheduling counters, set only when Options.IntraWorkers
	// selects the levelized engine (IntraWorkers > 1).  Levels, SCCs and
	// FeedbackSCCs describe the design's cached levelization; Sweeps
	// counts level sweeps to fixed point, summed over all cases, and is
	// deterministic for a given design and edit — it does not depend on
	// the worker count.
	IntraWorkers int // intra-case evaluation workers
	Levels       int // topological levels of the condensed acyclic graph
	SCCs         int // strongly connected components (checkers excluded)
	FeedbackSCCs int // components needing local fixed-point iteration
	Sweeps       int // wavefront sweeps to fixed point, all cases

	// Evaluation-cache counters (zero when Options.NoCache is set).  Hit
	// and miss totals are summed over all cases and workers; because the
	// cache is shared, which worker takes a given miss depends on
	// scheduling, so these counters — unlike every verification result —
	// may vary between runs of a concurrent verification.
	CacheHits   int           // scheduled evaluations served from the memo cache
	CacheMisses int           // evaluations computed and stored
	Interned    int           // distinct waveforms in the interning table
	Deduped     int           // waveform stores that reused an interned copy
	BuildTime   time.Duration // building evaluation structures
	VerifyTime  time.Duration // relaxation to fixed point, summed over all cases
	CheckTime   time.Duration // constraint checking, summed over all cases
	WallTime    time.Duration // wall-clock time of the case-evaluation phase

	// Incremental re-verification counters, set only by Verifier.Reverify
	// and Verifier.Update.  DirtyPrims/DirtyNets measure the structural
	// forward cone of the edit (the upper bound on revisited work);
	// ReusedWaves counts converged waveforms carried over unchanged,
	// summed over all cases.  ReverifyTime is the wall-clock time of the
	// whole incremental pass, seeding included.
	Incremental  bool
	DirtyPrims   int
	DirtyNets    int
	ReusedWaves  int
	ReverifyTime time.Duration

	// Cached marks a result restored from a persisted snapshot
	// (verify.Restore) rather than computed by relaxation.  It affects
	// only the human-readable summary — the JSON report is byte-identical
	// either way, which is the store's correctness contract.
	Cached bool

	// Tape marks a run executed on the compiled evaluation tape
	// (Options.NoTape unset); TapeCompileTime is the time spent obtaining
	// and refreshing the compiled program — near zero on warm runs, where
	// the design's engine cache already holds it.  Reported separately
	// from VerifyTime so the Table 3-1 style summary splits one-time
	// lowering from per-run relaxation.  With the tape, CacheHits,
	// CacheMisses, Interned and Deduped are cumulative over every run
	// that shared the persistent program, not per run.
	Tape            bool
	TapeCompileTime time.Duration

	// Case-exploration counters, set only when Options.Explore ran the
	// internal/explore engine.  ExploreCandidates counts control signals
	// ranked, ExploreProbes the incremental split evaluations spent on
	// the search (both deterministic for a given design); ExploreTime is
	// the wall-clock time of the whole exploration phase.
	ExploreCandidates int
	ExploreProbes     int
	ExploreTime       time.Duration
}

// CaseResult is the outcome of one simulated case-analysis cycle (§2.7).
type CaseResult struct {
	Label      string
	Events     int // output-value changes processed in this case
	PrimEvals  int
	Violations []Violation
	Waves      []values.Waveform // per net, when Options.KeepWaves is set
}

// Result is a complete verification outcome.
//
// Violations and Margins are deterministically ordered regardless of the
// worker count: primarily by case index (the designer's declared case
// order), then by constraint site — a case's convergence failure first,
// then the checker primitives in design order (each emitting its edges in
// cycle order), then the assertion cross-checks in net order.
type Result struct {
	Design      *netlist.Design
	Cases       []CaseResult // one per case, in declared case order
	Violations  []Violation  // all cases, ordered by (case index, constraint site)
	Margins     []Margin     // every constraint outcome, when Options.Margins is set
	Undefined   []string     // cross-reference listing: undriven nets with no assertion (§2.5)
	Exploration *Exploration // case-exploration report, when Options.Explore ran
	SiteProbs   []SiteProb   // violation probabilities, when Options.Delays is StatisticalDelays

	// MarginSurface carries the symbolic per-site margin functions of an
	// analytic-mode run (Options.Delays is AnalyticDelays): slack at any
	// parameter point in the declared box, without re-running the engine.
	MarginSurface *MarginSurface

	Stats Stats
}

// Errors reports whether any violation was detected.
func (r *Result) Errors() bool { return len(r.Violations) > 0 }

// verifier holds the relaxation state.
type verifier struct {
	d    *netlist.Design
	opts Options
	// ctx carries the run's cooperative-cancellation signal (nil means
	// context.Background()).  It is polled only at schedule-neutral
	// points — serial pass boundaries, wavefront level barriers and sweep
	// starts — so cancellation can abort a run but can never change the
	// result of one that completes: a canceled case reports an error
	// instead of a result, never a partial result.  aborted records the
	// structured cancellation error for runCase to surface.
	ctx     context.Context
	aborted error

	sigs    []eval.Signal                  // current signal per net
	initial []values.Waveform              // assertion/default seed per net
	pinned  []bool                         // nets pinned to a clock assertion (§2.9)
	caseMap map[netlist.NetID]values.Value // active case mapping (§2.7.1)
	margins []Margin

	// prog is the compiled evaluation tape (nil on interpreter runs).
	// When set, v.intern and v.cache alias the program's persistent
	// tables, initial/pinned may alias its precompiled seed image
	// (initialShared; copy-on-write before mutation), primitive dispatch
	// goes through the opcode jump table, relaxation always sweeps the
	// level spans, and the checking phase consults the program's plans
	// and negative site cache.  fresh marks a verifier whose sigs still
	// equal its seeds, so the first case can skip re-seeding unmapped
	// nets.  siteKeyBuf is the checking phase's key scratch; getFn/widFn
	// are the getter closures built once for key building.
	prog          *tape.Program
	slots         *tape.SlotTable
	initialShared bool
	fresh         bool
	siteKeyBuf    []byte
	getFn         eval.Getter
	widFn         eval.WaveID

	// Computed value of pinned driven nets, for the assertion
	// cross-check.  Indexed by net so concurrent wavefront workers commit
	// to disjoint slots.
	altOutW   []values.Waveform
	altOutSet []bool

	// Wired-OR support: nets with several drivers keep each driver's
	// latest output; the net's value is their OR.  wiredSlot maps each
	// (net, driver) pair to its slot in the per-verifier output tables;
	// it is built once and shared immutably across case workers.
	wired       map[netlist.NetID][]netlist.PrimID
	wiredSlot   map[[2]int32]int
	wiredOutW   []values.Waveform
	wiredOutSet []bool

	// Evaluation memoization (nil when Options.NoCache is set).  The
	// interner and cache are shared by every case worker: each case
	// starts from whatever the shared post-initialisation relaxation has
	// already computed.  A case-forced net changes the interned handles
	// of every waveform downstream of it, so the forced cone can never be
	// served stale entries — the key, not an invalidation walk, carries
	// the dependency.  sigID holds the interned handle of each net's
	// current waveform.
	intern *values.Interner
	cache  *eval.Cache
	sigID  []uint64

	// scratch is the serial engine's evaluation scratch (key buffer,
	// segment arena, getter closures), created lazily; netBuf collects
	// the nets changed by one evaluation.  wfScratch holds the wavefront
	// engine's per-worker scratches (worker 0's doubles as the serial
	// phase's), created lazily and reused across sweeps and cases.
	scratch   *evalScratch
	netBuf    []netlist.NetID
	wfScratch []*evalScratch

	// The serial worklist is a queue with an explicit head index — a pop
	// advances qhead instead of re-slicing, so the backing array is
	// compacted and reused rather than pinned and regrown.
	queue   []netlist.PrimID
	qhead   int
	inQueue []bool
	events  int
	evals   int
	sweeps  int // wavefront sweeps in the current case (intra engine only)

	// Incremental re-verification state, used only by Verifier-retained
	// case verifiers: changed marks nets whose stored waveform (or Dirs)
	// moved during the current pass, so constraint sites reading only
	// clean nets can reuse their memoized outcome; sites holds that
	// per-primitive memo.
	changed []bool
	sites   []siteChecks
}

// siteChecks is the memoized outcome of one constraint site — a checker
// primitive, a gate's directive rules, or a storage element's
// clock-defined rule — within one case.
type siteChecks struct {
	viols   []Violation
	margins []Margin
}

// Run verifies the design and returns the result.  The design must have
// passed netlist validation (Builder.Build or Design.Check).
func Run(d *netlist.Design, opts Options) (*Result, error) {
	return RunContext(context.Background(), d, opts)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled
// (or its deadline expires) the relaxation aborts at the next pass
// boundary or level barrier and the run returns a structured error of
// kind serr.Canceled wrapping ctx.Err().  A run that completes is
// bit-identical to an uncancelled one — cancellation can only abort,
// never alter, a result.
func RunContext(ctx context.Context, d *netlist.Design, opts Options) (*Result, error) {
	return (&Verifier{d: d, opts: opts}).run(ctx, false)
}

// ctxCheck polls the run's context.  It records and returns a structured
// cancellation error once the context is done, nil otherwise.
func (v *verifier) ctxCheck() error {
	if v.aborted != nil {
		return v.aborted
	}
	if v.ctx == nil {
		return nil
	}
	if err := v.ctx.Err(); err != nil {
		v.aborted = serr.Wrap(serr.Canceled, err)
		return v.aborted
	}
	return nil
}

// ctxCheckEvery polls the context only every 256th evaluation, keeping
// the cost of cooperative cancellation out of the serial hot loop.
func (v *verifier) ctxCheckEvery() error {
	if v.ctx == nil || v.evals&0xff != 0 {
		return nil
	}
	return v.ctxCheck()
}

// seedWave computes the §2.9 step-1 initial waveform of one net: a Force
// override, else the assertion waveform (pinned when it is a clock
// assertion), else the always-stable default for undriven unasserted nets
// (undef: listed in the cross-reference for the designer's attention),
// else UNKNOWN for driven nets.
func (v *verifier) seedWave(id netlist.NetID) (w values.Waveform, pinned, undef bool, err error) {
	n := &v.d.Nets[id]
	if fw, ok := v.opts.Force[id]; ok {
		if n.Driver != netlist.NoDriver {
			return w, false, false, serr.Newf(serr.Assertion, "verify: cannot force driven net %q", n.Name)
		}
		if err := fw.Check(); err != nil {
			return w, false, false, serr.Newf(serr.Assertion, "verify: forced waveform for %q: %v", n.Name, err)
		}
		if fw.Period != v.d.Period {
			return w, false, false, serr.Newf(serr.Assertion, "verify: forced waveform for %q has period %v, want %v", n.Name, fw.Period, v.d.Period)
		}
		return fw, false, false, nil
	}
	switch {
	case n.Assert != nil:
		aw, aerr := n.Assert.Waveform(v.d.Env())
		if aerr != nil {
			return w, false, false, serr.Newf(serr.Assertion, "verify: net %q: %v", n.Name, aerr)
		}
		pinned = n.Assert.Kind == assertion.Clock || n.Assert.Kind == assertion.PrecisionClock
		return aw, pinned, false, nil
	case n.Driver == netlist.NoDriver:
		return values.Const(v.d.Period, values.VS), false, true, nil
	default:
		return values.Const(v.d.Period, values.VU), false, false, nil
	}
}

// runState is the poolable per-run table set: every slice is sized by the
// design's net or primitive count — megabytes on large designs — and is
// recycled through the program's Scratch pool between non-retained runs,
// so a warm run adopts the previous run's allocations instead of
// allocating and zeroing fresh ones.
type runState struct {
	sigs      []eval.Signal
	sigID     []uint64
	altOutW   []values.Waveform
	altOutSet []bool
	inQueue   []bool
}

// fits reports whether the pooled tables match the design's dimensions.
func (rs *runState) fits(d *netlist.Design) bool {
	return len(rs.sigs) == len(d.Nets) && len(rs.sigID) == len(d.Nets) &&
		len(rs.inQueue) == len(d.Prims)
}

// adoptRunState installs a pooled table set, clearing the flag tables a
// run requires to start false.  The signal tables are left stale — every
// path that reads them first overwrites them (the seed loop covers every
// net, and altOutW reads are gated by altOutSet).
func (v *verifier) adoptRunState(rs *runState) {
	v.sigs = rs.sigs
	v.sigID = rs.sigID
	v.altOutW = rs.altOutW
	v.altOutSet = rs.altOutSet
	v.inQueue = rs.inQueue
	clear(v.altOutSet)
	clear(v.inQueue)
}

// releaseRunState returns the per-run tables to the program's pool.  Only
// non-retained runs release: a retained case verifier keeps its converged
// state for Reverify.  Run results hold no references into the pooled
// slices — kept waveforms and margins copy the waveform values, whose
// segment arrays live outside these tables.
func (v *verifier) releaseRunState() {
	if v.prog == nil || v.sigs == nil || v.sigID == nil {
		return
	}
	v.prog.Scratch.Put(&runState{
		sigs:      v.sigs,
		sigID:     v.sigID,
		altOutW:   v.altOutW,
		altOutSet: v.altOutSet,
		inQueue:   v.inQueue,
	})
	v.sigs, v.sigID, v.altOutW, v.altOutSet, v.inQueue = nil, nil, nil, nil, nil
}

// initVerifier builds the shared post-initialisation relaxation state
// (§2.9 step 1) every case starts from.  A non-nil interner/cache pair is
// adopted — the Verifier keeps them across runs so re-verification is
// served from warm memo tables; otherwise fresh ones are created unless
// NoCache asks for none.  With a compiled program the interner and cache
// are the program's persistent tables, the wired-OR slot maps are its
// precompiled ones, and — absent Force overrides — the seed image is
// adopted wholesale: shared waveform slices, precomputed handles, no
// per-net assertion rendering or interning.
func initVerifier(d *netlist.Design, opts Options, intern *values.Interner, cache *eval.Cache, prog *tape.Program) (*verifier, *Result, error) {
	v := &verifier{
		d:       d,
		opts:    opts,
		prog:    prog,
		caseMap: make(map[netlist.NetID]values.Value),
	}
	if prog != nil {
		intern, cache = prog.Intern, prog.Evals
		v.slots = prog.Slots()
		if rs, ok := prog.Scratch.Get().(*runState); ok && rs.fits(d) {
			v.adoptRunState(rs)
		}
	}
	if v.sigs == nil {
		v.sigs = make([]eval.Signal, len(d.Nets))
		v.altOutW = make([]values.Waveform, len(d.Nets))
		v.altOutSet = make([]bool, len(d.Nets))
		v.inQueue = make([]bool, len(d.Prims))
	}
	if !opts.NoCache {
		if intern == nil {
			intern = values.NewInterner()
			cache = eval.NewCache()
		}
		v.intern = intern
		v.cache = cache
		if v.sigID == nil {
			v.sigID = make([]uint64, len(d.Nets))
		}
	}
	res := &Result{Design: d}

	switch {
	case prog != nil:
		v.wired, v.wiredSlot = prog.Wired, prog.WiredSlot
	case d.WiredOr:
		counts := map[netlist.NetID]int{}
		for pi := range d.Prims {
			for _, port := range d.Prims[pi].Out {
				for _, o := range port.Bits {
					counts[o]++
				}
			}
		}
		v.wired = map[netlist.NetID][]netlist.PrimID{}
		v.wiredSlot = map[[2]int32]int{}
		for i := range d.Nets {
			n := netlist.NetID(i)
			if counts[n] <= 1 {
				continue
			}
			drivers := d.Drivers(n)
			v.wired[n] = drivers
			for _, dp := range drivers {
				v.wiredSlot[[2]int32{int32(n), int32(dp)}] = len(v.wiredSlot)
			}
		}
	}
	if v.wired != nil {
		v.wiredOutW = make([]values.Waveform, len(v.wiredSlot))
		v.wiredOutSet = make([]bool, len(v.wiredSlot))
	}

	// §2.9 step 1: initialise signals.  Clock-asserted nets are pinned to
	// their asserted waveform; stable-asserted nets seed S/C; driven nets
	// without assertions start UNKNOWN; undriven, unasserted nets are
	// taken to be always stable and listed for the designer's attention.
	if prog != nil && len(opts.Force) == 0 {
		// Tape fast path: adopt the precompiled seed image.  The slices
		// are shared read-only (copy-on-write before any mutation) and the
		// handles are already interned in the program's interner.
		seeds := prog.Seeds()
		v.initial = seeds.Initial
		v.pinned = seeds.Pinned
		v.initialShared = true
		copy(v.sigID, seeds.InitialID)
		for i := range v.sigs {
			v.sigs[i] = eval.Signal{Wave: seeds.Initial[i]}
		}
		res.Undefined = append([]string(nil), seeds.Undefined...)
	} else {
		v.initial = make([]values.Waveform, len(d.Nets))
		v.pinned = make([]bool, len(d.Nets))
		undefSeen := map[string]bool{}
		for i := range d.Nets {
			w, pinned, undef, err := v.seedWave(netlist.NetID(i))
			if err != nil {
				return nil, nil, err
			}
			v.initial[i] = w
			v.pinned[i] = pinned
			if undef && !undefSeen[d.Nets[i].Base] {
				undefSeen[d.Nets[i].Base] = true
				res.Undefined = append(res.Undefined, d.Nets[i].Base)
			}
			v.setSig(netlist.NetID(i), eval.Signal{Wave: w})
		}
		sort.Strings(res.Undefined)
	}
	v.fresh = true
	res.Stats.Primitives = len(d.Prims)
	res.Stats.Nets = len(d.Nets)
	return v, res, nil
}

// caseOutcome carries everything one simulated case contributes to the
// merged Result.
type caseOutcome struct {
	cr         CaseResult
	margins    []Margin
	verifyTime time.Duration
	checkTime  time.Duration
	reused     int // converged waveforms carried over unchanged (incremental only)
	sweeps     int // wavefront sweeps to fixed point (intra engine only)
	err        error
}

// clone snapshots the per-case relaxation state after the shared §2.9
// initialisation, so a worker can relax one case independently.  The
// design, options, initial waveforms, pinning and wired-OR driver lists
// are immutable during relaxation and shared; the mutable state — current
// signals, case mapping, alternate clock outputs, wired-OR driver outputs
// and the worklist — is fresh.  Waveform segment lists are never mutated
// in place, so sharing their backing arrays across workers is safe.  The
// evaluation cache and interning table are deliberately shared, not
// snapshotted: their entries are keyed on exact inputs, so a worker can
// only ever be served results that its own evaluation would reproduce.
func (v *verifier) clone() *verifier {
	w := &verifier{
		d:             v.d,
		opts:          v.opts,
		ctx:           v.ctx,
		prog:          v.prog,
		slots:         v.slots,
		initialShared: v.initialShared,
		fresh:         v.fresh,
		initial:       v.initial,
		pinned:        v.pinned,
		caseMap:       make(map[netlist.NetID]values.Value),
		wired:         v.wired,
		wiredSlot:     v.wiredSlot,
		intern:        v.intern,
		cache:         v.cache,
	}
	if v.prog != nil {
		if rs, ok := v.prog.Scratch.Get().(*runState); ok && rs.fits(v.d) {
			w.adoptRunState(rs)
		}
	}
	if w.sigs == nil {
		w.sigs = make([]eval.Signal, len(v.d.Nets))
		w.altOutW = make([]values.Waveform, len(v.d.Nets))
		w.altOutSet = make([]bool, len(v.d.Nets))
		w.inQueue = make([]bool, len(v.d.Prims))
	}
	copy(w.sigs, v.sigs)
	if v.sigID != nil {
		if w.sigID == nil {
			w.sigID = make([]uint64, len(v.d.Nets))
		}
		copy(w.sigID, v.sigID)
	} else {
		w.sigID = nil
	}
	if v.wired != nil {
		w.wiredOutW = make([]values.Waveform, len(v.wiredSlot))
		w.wiredOutSet = make([]bool, len(v.wiredSlot))
	}
	return w
}

// snapshot deep-copies the converged per-case state — current signals,
// case mapping, alternate clock outputs and wired-OR driver outputs — so
// a Verifier can retain it for incremental re-verification while the
// sequential schedule's shared verifier moves on to the next case.
func (v *verifier) snapshot() *verifier {
	w := v.clone()
	for k, val := range v.caseMap {
		w.caseMap[k] = val
	}
	copy(w.altOutW, v.altOutW)
	copy(w.altOutSet, v.altOutSet)
	copy(w.wiredOutW, v.wiredOutW)
	copy(w.wiredOutSet, v.wiredOutSet)
	return w
}

// setSig installs a net's signal unconditionally, interning its waveform
// when the cache is enabled so equal waveforms share storage and carry
// comparable handles.
func (v *verifier) setSig(id netlist.NetID, sig eval.Signal) {
	if v.intern != nil {
		sig.Wave, v.sigID[id] = v.intern.Intern(sig.Wave)
	}
	v.sigs[id] = sig
}

// storeSig installs a net's signal if it differs from the current one,
// reporting whether it changed.  With interning enabled the comparison is
// a handle compare — no waveform walk, no allocation.  During incremental
// re-verification every store that changes a net is recorded, so
// constraint sites reading only unchanged nets can reuse their memoized
// outcome.
func (v *verifier) storeSig(id netlist.NetID, sig eval.Signal) bool {
	if v.intern != nil {
		var wid uint64
		sig.Wave, wid = v.intern.Intern(sig.Wave)
		if wid == v.sigID[id] && sig.Dirs == v.sigs[id].Dirs {
			return false
		}
		v.sigID[id] = wid
	} else if sig.Wave.Equal(v.sigs[id].Wave) && sig.Dirs == v.sigs[id].Dirs {
		return false
	}
	v.sigs[id] = sig
	if v.changed != nil {
		v.changed[id] = true
	}
	return true
}

// storeSigID is storeSig for a signal whose interned handle is already
// known (from a cache entry or warm slot): the comparison and the store
// are pure handle bookkeeping — no interning, no waveform hash.
func (v *verifier) storeSigID(id netlist.NetID, sig eval.Signal, wid uint64) bool {
	if wid == v.sigID[id] && sig.Dirs == v.sigs[id].Dirs {
		return false
	}
	v.sigID[id] = wid
	v.sigs[id] = sig
	if v.changed != nil {
		v.changed[id] = true
	}
	return true
}

// runCase simulates one case-analysis cycle on this verifier's state:
// install the mapping, relax to fixed point, check every constraint.
func (v *verifier) runCase(c netlist.Case, first bool) caseOutcome {
	verifyStart := time.Now()
	v.events, v.evals, v.sweeps = 0, 0, 0
	if err := v.applyCase(c, first); err != nil {
		return caseOutcome{err: err}
	}
	conv := v.relax()
	if v.aborted != nil {
		err := v.aborted
		v.aborted = nil
		return caseOutcome{err: err}
	}
	out := caseOutcome{verifyTime: time.Since(verifyStart), sweeps: v.sweeps}

	checkStart := time.Now()
	cr := CaseResult{Label: c.Label, Events: v.events, PrimEvals: v.evals}
	if !conv {
		cr.Violations = append(cr.Violations, Violation{
			Kind:   ConvergenceViolation,
			Case:   c.Label,
			Detail: fmt.Sprintf("fixed point not reached within %d primitive evaluations", v.passCap()),
		})
	}
	cr.Violations = append(cr.Violations, v.check(c.Label)...)
	if v.opts.Margins {
		out.margins = v.margins
		v.margins = nil
	}
	if v.opts.KeepWaves {
		cr.Waves = make([]values.Waveform, len(v.sigs))
		for i, s := range v.sigs {
			cr.Waves[i] = s.Wave
		}
	}
	out.checkTime = time.Since(checkStart)
	out.cr = cr
	return out
}

// applyCase installs the case mapping (§2.7.1) and seeds the worklist: the
// whole circuit for the first case, only the affected cone afterwards.
func (v *verifier) applyCase(c netlist.Case, first bool) error {
	newMap, err := caseMapping(v.d, c)
	if err != nil {
		return err
	}

	// Nets leaving or entering the mapping must be re-seeded.
	affected := make(map[netlist.NetID]bool)
	for n := range v.caseMap {
		affected[n] = true
	}
	for n := range newMap {
		affected[n] = true
	}
	v.caseMap = newMap

	if first {
		if v.prog != nil && v.fresh {
			// Tape fast path: the signals still equal the seeds (interned,
			// handles installed), so re-seeding is the identity everywhere
			// except under the incoming case mapping.  affected holds
			// exactly the mapped nets — the verifier was fresh, so nothing
			// is leaving a previous mapping.
			v.fresh = false
			for id := range affected {
				v.setSig(id, eval.Signal{Wave: v.mapped(id, v.initial[id]), Dirs: v.sigs[id].Dirs})
			}
			for pi := range v.d.Prims {
				if !v.d.Prims[pi].Kind.IsChecker() {
					v.enqueue(netlist.PrimID(pi))
				}
			}
			return nil
		}
		v.fresh = false
		for i := range v.d.Nets {
			id := netlist.NetID(i)
			v.setSig(id, eval.Signal{Wave: v.mapped(id, v.initial[i]), Dirs: v.sigs[i].Dirs})
		}
		for pi := range v.d.Prims {
			if !v.d.Prims[pi].Kind.IsChecker() {
				v.enqueue(netlist.PrimID(pi))
			}
		}
		return nil
	}
	v.fresh = false
	for id := range affected {
		n := &v.d.Nets[id]
		if n.Driver == netlist.NoDriver || v.pinned[id] {
			// Re-seed from the initial value under the new mapping.
			w := v.mapped(id, v.initial[id])
			if v.storeSig(id, eval.Signal{Wave: w, Dirs: v.sigs[id].Dirs}) {
				v.events++
				v.fanout(id)
			}
		} else {
			// Driven: its driver recomputes and the store applies the
			// new mapping.
			v.enqueue(n.Driver)
		}
	}
	return nil
}

// caseMapping resolves a case's signal assignments (§2.7.1) to the
// per-net constant map the relaxation applies.  Shared by applyCase and
// snapshot restoration, which must rebuild the identical mapping.
func caseMapping(d *netlist.Design, c netlist.Case) (map[netlist.NetID]values.Value, error) {
	m := make(map[netlist.NetID]values.Value)
	for _, as := range c.Assignments {
		found := false
		for i := range d.Nets {
			if netlist.BaseMatches(d.Nets[i].Base, as.Base) {
				m[netlist.NetID(i)] = as.Value
				found = true
			}
		}
		if !found {
			return nil, serr.Newf(serr.Elaborate, "verify: case %q names unknown signal %q", c.Label, as.Base)
		}
	}
	return m, nil
}

// mapped applies the active case mapping to a waveform destined for net
// id: STABLE values become the case constant (§2.7.1).
func (v *verifier) mapped(id netlist.NetID, w values.Waveform) values.Waveform {
	cv, ok := v.caseMap[id]
	if !ok {
		return w
	}
	return w.MapUnary(func(x values.Value) values.Value {
		if x == values.VS {
			return cv
		}
		return x
	})
}

// waveID reports the interned handle of a net's current waveform, for
// cache-key building.  Valid only when the cache is enabled.
func (v *verifier) waveID(n netlist.NetID) uint64 { return v.sigID[n] }

func (v *verifier) enqueue(p netlist.PrimID) {
	if v.inQueue[p] || v.d.Prims[p].Kind.IsChecker() {
		return
	}
	v.inQueue[p] = true
	v.queue = append(v.queue, p)
}

// popQueue removes and returns the head of the worklist.  The consumed
// prefix is compacted away once it dominates the slice, so the backing
// array stays bounded by the number of outstanding entries instead of
// growing with the total number of pops (the [1:] re-slice it replaces
// pinned the array head forever).
func (v *verifier) popQueue() netlist.PrimID {
	p := v.queue[v.qhead]
	v.qhead++
	switch {
	case v.qhead == len(v.queue):
		v.queue = v.queue[:0]
		v.qhead = 0
	case v.qhead >= 64 && v.qhead > len(v.queue)/2:
		n := copy(v.queue, v.queue[v.qhead:])
		v.queue = v.queue[:n]
		v.qhead = 0
	}
	return p
}

// queueLen reports the number of outstanding worklist entries.
func (v *verifier) queueLen() int { return len(v.queue) - v.qhead }

// clearQueue empties the worklist and its membership flags.
func (v *verifier) clearQueue() {
	v.queue = v.queue[:0]
	v.qhead = 0
	for i := range v.inQueue {
		v.inQueue[i] = false
	}
}

func (v *verifier) fanout(id netlist.NetID) {
	for _, p := range v.d.Nets[id].Fanout {
		v.enqueue(p)
	}
}

// The documented MaxPasses default: 50 evaluations per primitive, with a
// floor of 1000 so tiny designs containing a genuine oscillation still get
// enough passes to prove non-convergence rather than flagging it spuriously.
const (
	defaultEvalsPerPrim = 50
	defaultPassFloor    = 1000
)

func (v *verifier) passCap() int { return v.opts.passCap(len(v.d.Prims)) }

// passCap resolves the effective evaluation cap for a design with nPrims
// primitives.  It is also part of the store's content address: two runs
// with different caps can disagree on convergence, so they must never
// share a cached report.
func (o Options) passCap(nPrims int) int {
	if o.MaxPasses > 0 {
		return o.MaxPasses
	}
	limit := defaultEvalsPerPrim * nPrims
	if limit < defaultPassFloor {
		limit = defaultPassFloor
	}
	return limit
}

// evalScratch is one evaluation worker's private scratch: the cache-key
// buffer, the waveform segment arena, and the getter closures built once
// instead of per evaluation.  The serial engine keeps one; the wavefront
// engine keeps one per worker.
type evalScratch struct {
	keyBuf []byte
	arena  *values.Arena
	get    eval.Getter
	wid    eval.WaveID
	// changed accumulates the nets moved by this worker's component
	// evaluations within one level; compResult spans reference into it,
	// and the level barrier truncates it once the spans are consumed, so
	// the backing array is reused instead of grown afresh per component.
	changed []netlist.NetID
}

func (v *verifier) newScratch() *evalScratch {
	sc := &evalScratch{arena: &values.Arena{}}
	sc.get = func(n netlist.NetID) eval.Signal { return v.sigs[n] }
	if v.sigID != nil {
		sc.wid = func(n netlist.NetID) uint64 { return v.sigID[n] }
	}
	return sc
}

// evalPrim evaluates one primitive and commits its outputs, appending
// every net whose stored signal changed to dst.  Pinned nets go to the
// altOut side table and are never appended; the caller owns event
// counting and consumer scheduling.
//
// Under the wavefront engine this runs concurrently on several workers.
// That is safe because every shared write lands at an index owned by this
// primitive alone — a net has one driver (wired-OR co-drivers share a
// component and hence a worker), so sigs/sigID/changed/altOut commits of
// concurrently evaluated primitives never collide — and the interner and
// cache are internally synchronized.
func (v *verifier) evalPrim(pid netlist.PrimID, sc *evalScratch, dst []netlist.NetID) []netlist.NetID {
	p := &v.d.Prims[pid]
	var outs []eval.Signal
	var ids []uint64
	var err error
	switch {
	case v.slots != nil:
		// Warm-slot fast path: if one of the primitive's recent evaluations
		// was computed from these exact inputs (interned handles + governing
		// directives) under the current environment generation, reuse it
		// without key building, hashing or locking.  Miss: fall through to
		// the keyed memo and publish a fresh variant.
		if sv := v.slotLookup(pid, p, false); sv != nil {
			outs, ids = sv.Outs, sv.IDs
			v.cache.NoteHit()
			break
		}
		fallthrough
	case v.cache != nil:
		// Memoized evaluation: the key covers everything Prim reads,
		// with input waveforms as interned handles, so a hit returns
		// exactly what evaluation would produce.  Outputs are interned
		// before storing so every consumer shares one copy (and no cache
		// entry references a worker's arena).
		sc.keyBuf = eval.AppendKey(sc.keyBuf[:0], v.d, p, sc.get, sc.wid)
		var ok bool
		if outs, ids, ok = v.cache.Get(sc.keyBuf); !ok {
			outs, err = v.dispatch(pid, p, sc)
			if err == nil && outs != nil {
				ids = make([]uint64, len(outs))
				for i := range outs {
					outs[i].Wave, ids[i] = v.intern.Intern(outs[i].Wave)
				}
				v.cache.Put(sc.keyBuf, outs, ids)
			}
		}
		if v.slots != nil && err == nil && outs != nil {
			v.publishSlot(pid, outs, ids)
		}
	default:
		outs, err = v.dispatch(pid, p, sc)
	}
	if err != nil || outs == nil {
		return dst
	}
	for bit, sig := range outs {
		id := p.Out[0].Bits[bit]
		if drivers, isWired := v.wired[id]; isWired {
			// Wired-OR: remember this driver's output and fold the
			// drivers together (missing ones count as UNKNOWN until
			// their first evaluation).
			slot := v.wiredSlot[[2]int32{int32(id), int32(pid)}]
			v.wiredOutW[slot] = sig.Wave
			v.wiredOutSet[slot] = true
			folded := values.ConstA(v.d.Period, values.V0, sc.arena)
			for _, dp := range drivers {
				ds := v.wiredSlot[[2]int32{int32(id), int32(dp)}]
				w := values.ConstA(v.d.Period, values.VU, sc.arena)
				if v.wiredOutSet[ds] {
					w = v.wiredOutW[ds]
				}
				folded = values.CombineA(folded, w, values.Or, sc.arena)
			}
			sig = eval.Signal{Wave: folded, Dirs: sig.Dirs}
		} else if ids != nil && !v.pinned[id] {
			// Handle-aware commit: the output's interned id is known, and
			// on unmapped nets (the common case) the mapped waveform is the
			// waveform itself, so the store is a handle compare — no
			// re-interning, no waveform hash.
			if _, hasMap := v.caseMap[id]; !hasMap {
				if v.storeSigID(id, sig, ids[bit]) {
					dst = append(dst, id)
				}
				continue
			}
		}
		sig.Wave = v.mapped(id, sig.Wave)
		if v.pinned[id] {
			// The designer's clock assertion rules; remember the
			// computed value for the assertion cross-check.
			v.altOutW[id] = sig.Wave
			v.altOutSet[id] = true
			continue
		}
		if v.storeSig(id, sig) {
			dst = append(dst, id)
		}
	}
	return dst
}

// slotLookup scans a primitive's warm slot for a variant whose recorded
// inputs equal the current ones: per input bit (in AppendKey's connection
// order), the interned handle of the incoming waveform and the governing
// directive string.  Everything else evaluation reads is pinned by the
// program's environment generation, so a match implies the variant's
// outputs are exactly what evaluation would produce.  With site true it
// matches clean checker-site variants (Outs == nil) instead.
func (v *verifier) slotLookup(pid netlist.PrimID, p *netlist.Prim, site bool) *tape.SlotVar {
	s := v.slots.Load(pid)
	if s == nil {
		return nil
	}
	for i := range s.Vars {
		sv := &s.Vars[i]
		if (sv.Outs == nil) == site && v.slotMatch(pid, sv) {
			return sv
		}
	}
	return nil
}

// slotMatch reports whether one variant's recorded inputs equal the
// primitive's current inputs, scanning the program's flat connection
// table instead of the netlist's nested port structure.
func (v *verifier) slotMatch(pid netlist.PrimID, sv *tape.SlotVar) bool {
	span := v.prog.ConnSpan[pid]
	nets := v.prog.ConnNet[span[0]:span[1]]
	if len(nets) != len(sv.In) {
		return false
	}
	cdirs := v.prog.ConnDirs[span[0]:span[1]]
	for k, n := range nets {
		dirs := cdirs[k]
		if dirs.Empty() {
			dirs = v.sigs[n].Dirs
		}
		if in := &sv.In[k]; in.ID != v.sigID[n] || in.Dirs != dirs {
			return false
		}
	}
	return true
}

// publishSlot appends the primitive's current inputs and interned outputs
// to its warm slot as a fresh variant, evicting the oldest beyond
// tape.MaxSlotVars.  Slots are immutable once published, so the surviving
// variants are copied into a new Slot; publishes happen only while a
// cycle of states is being (re)learned, never in the warm steady state.
// With nil outs it records a clean checker site.  Concurrent publishers
// can lose each other's variant — last writer wins — which costs a
// relearn, never correctness.
func (v *verifier) publishSlot(pid netlist.PrimID, outs []eval.Signal, ids []uint64) {
	span := v.prog.ConnSpan[pid]
	nets := v.prog.ConnNet[span[0]:span[1]]
	cdirs := v.prog.ConnDirs[span[0]:span[1]]
	sv := tape.SlotVar{Outs: outs, IDs: ids, In: make([]tape.SlotInput, len(nets))}
	for k, n := range nets {
		dirs := cdirs[k]
		if dirs.Empty() {
			dirs = v.sigs[n].Dirs
		}
		sv.In[k] = tape.SlotInput{ID: v.sigID[n], Dirs: dirs}
	}
	var old []tape.SlotVar
	if s := v.slots.Load(pid); s != nil {
		old = s.Vars
		if len(old) >= tape.MaxSlotVars {
			old = old[len(old)-tape.MaxSlotVars+1:]
		}
	}
	ns := &tape.Slot{Vars: make([]tape.SlotVar, 0, len(old)+1)}
	ns.Vars = append(append(ns.Vars, old...), sv)
	v.slots.Store(pid, ns)
}

// dispatch evaluates one primitive: through the tape's opcode jump table
// when a program is compiled, else the generic evaluator.  The table path
// is segment-for-segment identical (eval.GateTableA mirrors evalGate), so
// the choice never affects results — or cache entries, which the two
// paths can share.
func (v *verifier) dispatch(pid netlist.PrimID, p *netlist.Prim, sc *evalScratch) ([]eval.Signal, error) {
	if v.prog != nil {
		return v.prog.Eval(pid, v.d, p, sc.get, sc.arena)
	}
	return eval.PrimA(v.d, p, sc.get, sc.arena)
}

// relax runs the event-driven evaluation to a fixed point (§2.9 step 2).
// It reports whether the fixed point was reached within the pass cap.
// With IntraWorkers > 1 the worklist is handed to the levelized wavefront
// scheduler, which converges on the same fixed point.  A canceled context
// aborts the loop at a pass boundary, leaving v.aborted set; the partial
// state is discarded by the caller.
func (v *verifier) relax() bool {
	if err := v.ctxCheck(); err != nil {
		return false
	}
	if v.prog != nil || v.opts.intraWorkers() > 1 {
		return v.wavefrontRelax()
	}
	cap := v.passCap()
	if v.scratch == nil {
		v.scratch = v.newScratch()
	}
	for v.queueLen() > 0 {
		if v.evals >= cap {
			v.clearQueue()
			return false
		}
		if err := v.ctxCheckEvery(); err != nil {
			v.clearQueue()
			return false
		}
		pid := v.popQueue()
		v.inQueue[pid] = false
		v.evals++
		v.netBuf = v.evalPrim(pid, v.scratch, v.netBuf[:0])
		for _, id := range v.netBuf {
			v.events++
			v.fanout(id)
		}
	}
	return true
}
