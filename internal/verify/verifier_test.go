package verify

import (
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

// buildFig25 constructs the register-file circuit of Fig 2-5 / §3.2: a
// 16-word by 32-bit register file, a 32-bit output register, a 2-input
// multiplexer selecting between read and write addresses, and the
// write-enable gating.  Cycle 50 ns, clock unit 6.25 ns, default wire
// 0.0/2.0 ns, precision clock skew ±1 ns.
func buildFig25(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig2-5")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.FromNS(6.25))
	b.SetDefaultWire(tick.R(0, 2))
	b.SetPrecisionSkew(tick.R(-1, 1))

	// External signals with designer assertions.
	ck := b.Net("CK .P2-3 L") // write-strobe clock, low-asserted 12.5–18.75
	clk := b.Net("CLK .P0-4") // phase clock: high 0–25
	write := b.Net("WRITE .S0-6 L")
	wdata := b.Vector("W DATA .S0-6", 32)
	wadr := b.Vector("W ADR .S0-6", 4)
	radr := b.Vector("READ ADR .S4-9", 4)

	// Address multiplexer: CLK high selects the write address.  The &Z
	// directive zeroes the select interconnection (the clock is tuned to
	// the multiplexer, §2.6).
	adr := b.Vector("ADR", 4)
	b.Mux(netlist.KMux2, "ADR MUX", tick.R(1.2, 3.3), tick.R(0.3, 1.2), adr,
		b.Directive("Z", netlist.Conns(clk)),
		netlist.Conns(radr...), netlist.Conns(wadr...))
	// The designer specified 0.0/6.0 ns interconnection for the RAM
	// address lines (§3.2).
	b.SetWire(tick.R(0, 6), adr...)

	// Write-enable: the low-asserted clock ANDed (on complement rails)
	// with the low-asserted WRITE control; &H checks the control and
	// refers the clock timing to the gate output.
	we := b.Net("WE")
	b.Gate(netlist.KAnd, "WE GATE", tick.R(1.0, 2.9), []netlist.NetID{we},
		b.Directive("H", netlist.Invert(netlist.Conns(ck))),
		netlist.Invert(netlist.Conns(write)))

	// The 16W RAM 10145A timing model (Fig 3-5): set-up/hold checks on
	// data and address, minimum write-pulse width, and a CHG-modelled
	// read path.
	b.SetupHold("RAM I CHK", ns(4.5), ns(-1.0), netlist.Conns(wdata...),
		netlist.Invert(netlist.Conns(we))[0]) // stability around the falling WE edge
	b.SetupRiseHoldFall("RAM A CHK", ns(3.5), ns(1.0), netlist.Conns(adr...),
		netlist.Conn{Net: we})
	b.MinPulse("RAM WE WIDTH", ns(4.0), 0, netlist.Conn{Net: we})

	// The read-data path: all 32 output bits share one timing behaviour,
	// modelled by a single CHG primitive (the vectored-primitive economy
	// of Table 3-2) broadcast into the 32-bit register.
	do := b.Net("DO")
	b.Gate(netlist.KChg, "RAM READ", tick.R(5.0, 9.0), []netlist.NetID{do},
		netlist.Conns(adr[0]), netlist.Conns(adr[1]), netlist.Conns(adr[2]), netlist.Conns(adr[3]),
		netlist.Conns(we))

	// Output register (Fig 3-7): 1.5/4.5 ns delay, 2.5 ns set-up, 1.5 ns
	// hold against the phase clock.
	q := b.Vector("Q", 32)
	b.Register("OUT REG", tick.R(1.5, 4.5), q, netlist.Conn{Net: clk}, netlist.Conns(do))
	b.SetupHold("OUT REG CHK", ns(2.5), ns(1.5), netlist.Conns(do), netlist.Conn{Net: clk})

	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFigure3_10_SignalValues reproduces the timing-summary values of
// Fig 3-10: the address lines are stable at the beginning of the cycle,
// changing 0.5–5.5 ns, stable until 25.5 ns, changing until 30.5 ns, then
// stable for the rest of the cycle.
func TestFigure3_10_SignalValues(t *testing.T) {
	d := buildFig25(t)
	res, err := Run(d, Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	id, ok := d.NetByName("ADR<0>")
	if !ok {
		t.Fatal("ADR<0> missing")
	}
	w := res.Cases[0].Waves[id].IncorporateSkew()
	for _, c := range []struct {
		at     float64
		stable bool
	}{
		{0.2, true}, {0.6, false}, {5.4, false}, {5.6, true}, {25.4, true},
		{25.6, false}, {30.4, false}, {30.6, true}, {49.0, true},
	} {
		got := w.At(ns(c.at))
		if got.Stable() != c.stable {
			t.Errorf("ADR at %v ns = %v, want stable=%v\nwaveform: %v", c.at, got, c.stable, w)
		}
	}
}

// TestFigure3_11_Errors reproduces the two errors of Fig 3-11: the RAM
// address set-up of 3.5 ns missed by the full 3.5 ns (data stable at
// 11.5 ns, write-enable rising at 11.5 ns), and the output register
// set-up of 2.5 ns missed by 1.0 ns (data stable at 47.5 ns, clock rising
// at 49.0 ns).
func TestFigure3_11_Errors(t *testing.T) {
	d := buildFig25(t)
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ramSetup, regSetup *Violation
	for i := range res.Violations {
		v := &res.Violations[i]
		switch {
		case v.Prim == "RAM A CHK" && v.Kind == SetupViolation:
			ramSetup = v
		case v.Prim == "OUT REG CHK" && v.Kind == SetupViolation:
			regSetup = v
		default:
			t.Errorf("unexpected violation: %v (data %v)", v, v.DataWave)
		}
	}
	if ramSetup == nil {
		t.Fatal("RAM address set-up violation not detected")
	}
	if ramSetup.Required != ns(3.5) || ramSetup.Actual != 0 {
		t.Errorf("RAM set-up: required %v actual %v, want 3.5/0.0 (missed by the full 3.5)",
			ramSetup.Required, ramSetup.Actual)
	}
	if ramSetup.At != ns(11.5) {
		t.Errorf("RAM set-up edge at %v, want 11.5 ns", ramSetup.At)
	}
	if regSetup == nil {
		t.Fatal("output register set-up violation not detected")
	}
	if regSetup.Required != ns(2.5) || regSetup.Actual != ns(1.5) {
		t.Errorf("register set-up: required %v actual %v, want 2.5/1.5 (missed by 1.0)",
			regSetup.Required, regSetup.Actual)
	}
	if regSetup.At != ns(49) {
		t.Errorf("register set-up edge at %v, want 49.0 ns", regSetup.At)
	}
	if regSetup.Margin() != ns(-1.0) {
		t.Errorf("register margin = %v, want -1.0 ns", regSetup.Margin())
	}
	// Exactly two errors, as in the paper.
	if len(res.Violations) != 2 {
		t.Errorf("got %d violations, want 2: %v", len(res.Violations), res.Violations)
	}
	// The data waveforms carried in the violations show the paper's
	// "data not stable until" instants.
	if got := regSetup.DataWave.StableBack(ns(49)); got != ns(1.5) {
		t.Errorf("register data stability back from 49.0 = %v, want 1.5 (stable at 47.5)", got)
	}
}

// TestFigure2_5_CleanWhenRelaxed confirms the same circuit passes when the
// two failing paths are given the margin the checkers ask for.
func TestFigure2_5_CleanWhenRelaxed(t *testing.T) {
	b := netlist.NewBuilder("fig2-5-clean")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.FromNS(6.25))
	b.SetDefaultWire(tick.R(0, 2))
	b.SetPrecisionSkew(tick.R(-1, 1))
	clk := b.Net("CLK .P0-4")
	do := b.Vector("DO .S6-12", 8) // stable 37.5→25 (wrapping): covers the 49–53 ns edge window
	q := b.Vector("Q", 8)
	b.Register("OUT REG", tick.R(1.5, 4.5), q, netlist.Conn{Net: clk}, netlist.Conns(do...))
	b.SetupHold("OUT REG CHK", ns(2.5), ns(1.5), netlist.Conns(do...), netlist.Conn{Net: clk})
	d := b.MustBuild()
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() {
		t.Errorf("clean circuit reported violations: %v", res.Violations)
	}
}

// buildFig26 constructs the case-analysis example of Fig 2-6: two
// multiplexers share one control signal wired so that the 10 ns extra
// delay can be taken at most once; without case analysis the verifier
// sees a 40 ns worst-case path, with case analysis 30 ns in both cases.
func buildFig26(withCases bool, t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig2-6")
	b.SetPeriod(100 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})

	in := b.Net("INPUT .S5-104") // changing only 4–5 ns
	ctrl := b.Net("CONTROL SIGNAL .S0-100")
	d1 := b.Net("D1")
	m1 := b.Net("M1")
	d2 := b.Net("D2")
	out := b.Net("OUTPUT .S35-104") // the designer expects 30 ns max delay

	// An unrelated pipeline tail, untouched by the case mapping — it lets
	// the incremental-reevaluation test observe that case 2 skips it.
	t1, t2, t3 := b.Net("TAIL 1"), b.Net("TAIL 2"), b.Net("TAIL 3")
	b.Buf("TAIL A", tick.R(1, 2), []netlist.NetID{t1}, netlist.Conns(in))
	b.Buf("TAIL B", tick.R(1, 2), []netlist.NetID{t2}, netlist.Conns(t1))
	b.Buf("TAIL C", tick.R(1, 2), []netlist.NetID{t3}, netlist.Conns(t2))

	b.Buf("DELAY A", tick.R(10, 10), []netlist.NetID{d1}, netlist.Conns(in))
	b.Mux(netlist.KMux2, "MUX 1", tick.R(10, 10), tick.Range{}, []netlist.NetID{m1},
		netlist.Conns(ctrl), netlist.Conns(in), netlist.Conns(d1))
	b.Buf("DELAY B", tick.R(10, 10), []netlist.NetID{d2}, netlist.Conns(m1))
	// The second mux takes the extra delay on the *other* polarity.
	b.Mux(netlist.KMux2, "MUX 2", tick.R(10, 10), tick.Range{}, []netlist.NetID{out},
		netlist.Conns(ctrl), netlist.Conns(d2), netlist.Conns(m1))
	if withCases {
		b.AddCase("CONTROL SIGNAL = 0", netlist.Assign("CONTROL SIGNAL", values.V0))
		b.AddCase("CONTROL SIGNAL = 1", netlist.Assign("CONTROL SIGNAL", values.V1))
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFigure2_6_CaseAnalysis: without case analysis the worst-case path is
// pessimistically 40 ns, violating the 30 ns output assertion; with the
// designer's two cases both simulations see 30 ns and the assertion holds.
func TestFigure2_6_CaseAnalysis(t *testing.T) {
	pess, err := Run(buildFig26(false, t), Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range pess.Violations {
		if v.Kind == AssertionViolation && strings.Contains(v.Data, "OUTPUT") {
			found = true
		}
	}
	if !found {
		t.Errorf("pessimistic analysis should flag the OUTPUT assertion: %v", pess.Violations)
	}
	// The input changes during 4–5 ns; the pessimistic 40 ns path shows
	// the output changing as late as 44–45 ns.
	id, _ := pess.Design.NetByName("OUTPUT .S35-104")
	if w := pess.Cases[0].Waves[id]; w.At(ns(44.5)) != values.VC {
		t.Errorf("pessimistic OUTPUT at 44.5 ns = %v, want C (40 ns path): %v", w.At(ns(44.5)), w)
	}

	cased, err := Run(buildFig26(true, t), Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cased.Violations {
		if v.Kind == AssertionViolation {
			t.Errorf("case analysis should clear the assertion: %v", v)
		}
	}
	if len(cased.Cases) != 2 {
		t.Fatalf("expected 2 cases, got %d", len(cased.Cases))
	}
	id2, _ := cased.Design.NetByName("OUTPUT .S35-104")
	for ci, cr := range cased.Cases {
		w := cr.Waves[id2]
		// Both cases: the delay is exactly 30 ns, so the output changes
		// only during 34–35 ns (input changes 4–5 ns), never at 44.5 ns.
		if !w.At(ns(34.5)).Changing() {
			t.Errorf("case %d: OUTPUT should be changing at 34.5 ns (30 ns path): %v", ci, w)
		}
		if w.At(ns(44.5)).Changing() {
			t.Errorf("case %d: the 40 ns false path should be gone: %v", ci, w)
		}
	}
}

// TestFigure2_6_IncrementalReevaluation: under the sequential schedule
// (Workers == 1) going from case to case only the affected part of the
// circuit is reevaluated (§2.7, §3.3.2), so the second case processes
// fewer events than the first.  Workers is pinned because the concurrent
// schedule relaxes every case in full from the initial snapshot.
func TestFigure2_6_IncrementalReevaluation(t *testing.T) {
	res, err := Run(buildFig26(true, t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, second := res.Cases[0], res.Cases[1]
	if second.PrimEvals >= first.PrimEvals {
		t.Errorf("case 2 evaluated %d primitives, case 1 %d: incremental reevaluation not happening",
			second.PrimEvals, first.PrimEvals)
	}
	if second.Events == 0 {
		t.Error("case 2 should still process some events (the control changed)")
	}
}

// buildFig15 constructs the gated-clock hazard of Fig 1-5: CLOCK is high
// 20–30 ns but the inhibiting ENABLE arrives only at 25 ns, so a runt
// pulse of up to 5 ns may reach the register clock.
func buildFig15(t *testing.T, withDirective bool) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig1-5")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})

	clock := b.Net("CLOCK .P20-30")
	enable := b.Net("ENABLE .S25-70") // meant to be settled before 20 ns, but is late
	regCk := b.Net("REG CLOCK")
	dta := b.Net("DATA .S0-50")
	q := b.Net("Q")

	ckConns := netlist.Conns(clock)
	if withDirective {
		ckConns = b.Directive("A", ckConns)
	}
	b.Gate(netlist.KAnd, "CLOCK GATE", tick.Range{}, []netlist.NetID{regCk},
		ckConns, netlist.Conns(enable))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: regCk}, netlist.Conns(dta))
	b.MinPulse("REG CK WIDTH", ns(5.0), ns(3.0), netlist.Conn{Net: regCk})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFigure1_5_HazardDetected: without the &A directive the possible runt
// pulse violates the minimum pulse width; with &A the verifier instead
// reports the control signal unstable while the clock is asserted.  Either
// way the class of error is caught.
func TestFigure1_5_HazardDetected(t *testing.T) {
	plain, err := Run(buildFig15(t, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundRunt := false
	for _, v := range plain.Violations {
		if v.Kind == MinPulseHighViolation && v.Prim == "REG CK WIDTH" {
			foundRunt = true
			if v.Actual != 0 {
				t.Errorf("runt pulse guaranteed width = %v, want 0 (may be arbitrarily narrow)", v.Actual)
			}
		}
	}
	if !foundRunt {
		t.Errorf("runt pulse not detected: %v", plain.Violations)
	}

	directed, err := Run(buildFig15(t, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundDir := false
	for _, v := range directed.Violations {
		if v.Kind == DirectiveViolation && v.Data == "ENABLE .S25-70" {
			foundDir = true
		}
	}
	if !foundDir {
		t.Errorf("&A stability violation not detected: %v", directed.Violations)
	}
}

// buildFig41 constructs the correlation example of Fig 4-1: a register fed
// back through a multiplexer, clocked through a buffer that inserts 5 ns
// of skew.  The register+mux minimum delay exceeds the hold time, so real
// hardware is fine — but the Verifier, reasoning in absolute times,
// reports a hold violation.  Fig 4-2 suppresses it with a CORR delay at
// least as long as the clock skew.
func buildFig41(t *testing.T, corr bool) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig4-1")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})

	ck := b.Net("CK .P20-30")
	bufCk := b.Net("BUF CK")
	load := b.Net("LOAD .S0-50")
	newData := b.Net("NEW DATA .S0-50")
	q := b.Net("Q")
	fb := b.Net("FB")
	dIn := b.Net("D")

	b.Buf("CK BUF", tick.R(0, 5), []netlist.NetID{bufCk}, netlist.Conns(ck))
	if corr {
		b.Buf("CORR", tick.R(5, 5), []netlist.NetID{fb}, netlist.Conns(q))
	} else {
		b.Buf("FB WIRE", tick.Range{}, []netlist.NetID{fb}, netlist.Conns(q))
	}
	b.Mux(netlist.KMux2, "HOLD MUX", tick.R(1, 2), tick.Range{}, []netlist.NetID{dIn},
		netlist.Conns(load), netlist.Conns(fb), netlist.Conns(newData))
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: bufCk}, netlist.Conns(dIn))
	b.SetupHold("REG CHK", ns(2.0), ns(1.5), netlist.Conns(dIn), netlist.Conn{Net: bufCk})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFigure4_1_CorrelationFalseError(t *testing.T) {
	res, err := Run(buildFig41(t, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == HoldViolation && v.Prim == "REG CHK" {
			found = true
		}
	}
	if !found {
		t.Errorf("the known correlation false error should be reported: %v", res.Violations)
	}
}

func TestFigure4_2_CorrDelaySuppressesFalseError(t *testing.T) {
	res, err := Run(buildFig41(t, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.Kind == HoldViolation {
			t.Errorf("CORR delay should suppress the false hold error: %v", v)
		}
	}
}

func TestUndefinedSignalListing(t *testing.T) {
	b := netlist.NewBuilder("xref")
	b.SetPeriod(50 * tick.NS)
	x := b.Net("FLOATING INPUT")
	o := b.Net("O")
	b.Buf("b", tick.Range{}, []netlist.NetID{o}, netlist.Conns(x))
	d := b.MustBuild()
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undefined) != 1 || res.Undefined[0] != "FLOATING INPUT" {
		t.Errorf("cross-reference listing = %v, want [FLOATING INPUT]", res.Undefined)
	}
	// Undefined signals are taken to be always stable: no violations.
	if res.Errors() {
		t.Errorf("unexpected violations: %v", res.Violations)
	}
}

func TestUnknownClockReported(t *testing.T) {
	b := netlist.NewBuilder("unkck")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	// A register clocked by the XOR of an asserted stable signal and an
	// undefined driven signal: the clock value is UNKNOWN.
	s := b.Net("S .S0-50")
	u := b.Net("UDRIVEN")
	loopIn := b.Net("LOOP IN")
	b.Gate(netlist.KXor, "mix", tick.Range{}, []netlist.NetID{u}, netlist.Conns(loopIn), netlist.Conns(s))
	b.Gate(netlist.KXor, "loop", tick.Range{}, []netlist.NetID{loopIn}, netlist.Conns(u), netlist.Conns(u))
	q := b.Net("Q")
	dd := b.Net("DD .S0-50")
	b.Register("REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: u}, netlist.Conns(dd))
	d := b.MustBuild()
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == UnknownClockViolation {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown clock not reported: %v", res.Violations)
	}
}

func TestConvergenceCap(t *testing.T) {
	d := buildFig25(t)
	res, err := Run(d, Options{MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == ConvergenceViolation {
			found = true
		}
	}
	if !found {
		t.Error("pass cap exhaustion should be reported")
	}
}

func TestCaseUnknownSignal(t *testing.T) {
	b := netlist.NewBuilder("badcase")
	b.SetPeriod(50 * tick.NS)
	b.Net("A .S0-50")
	b.AddCase("bad", netlist.Assign("NO SUCH SIGNAL", values.V0))
	d := b.MustBuild()
	if _, err := Run(d, Options{}); err == nil || !strings.Contains(err.Error(), "unknown signal") {
		t.Errorf("case naming an unknown signal should fail, got %v", err)
	}
}

func TestVectorViolationGrouping(t *testing.T) {
	b := netlist.NewBuilder("group")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	ck := b.Net("CK .P4-5")
	data := b.Vector("LATE DATA .S5-7", 16) // stable 25–35 only: violates around the 20 ns edge
	b.SetupHold("CHK", ns(2.0), ns(1.0), netlist.Conns(data...), netlist.Conn{Net: ck})
	d := b.MustBuild()
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setups := 0
	for _, v := range res.Violations {
		if v.Kind == SetupViolation {
			setups++
			if !strings.Contains(v.Detail, "15 further bits") {
				t.Errorf("grouped violation detail = %q", v.Detail)
			}
		}
	}
	if setups != 1 {
		t.Errorf("got %d set-up violations for a uniform 16-bit bus, want 1 grouped", setups)
	}
}

func TestStatsPopulated(t *testing.T) {
	d := buildFig25(t)
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Primitives != len(d.Prims) || s.Nets != len(d.Nets) {
		t.Errorf("stats sizes wrong: %+v", s)
	}
	if s.Events == 0 || s.PrimEvals == 0 || s.Cases != 1 {
		t.Errorf("stats counters wrong: %+v", s)
	}
	if s.PrimEvals < s.Primitives-4 { // checkers are not evaluated in relaxation
		t.Errorf("every driving primitive should be evaluated at least once: %+v", s)
	}
}

func TestPinnedClockNotOverwritten(t *testing.T) {
	// A driven net with a clock assertion keeps its asserted waveform; a
	// mismatching driver is reported.
	b := netlist.NewBuilder("pinned")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(5 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	src := b.Net("SRC .P1-2")
	derived := b.Net("DERIVED .P2-3") // asserted 10–15... but driven with 5 ns delay from SRC
	b.Buf("CKBUF", tick.R(2, 2), []netlist.NetID{derived}, netlist.Conns(src))
	d := b.MustBuild()
	res, err := Run(d, Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	// The pinned value is the asserted one: high 10–15.
	id, _ := d.NetByName("DERIVED .P2-3")
	w := res.Cases[0].Waves[id]
	if w.At(ns(12)) != values.V1 || w.At(ns(8)) != values.V0 {
		t.Errorf("pinned clock wave wrong: %v", w)
	}
	// The driver disagrees (SRC high 5–10 delayed 2 → 7–12): reported.
	found := false
	for _, v := range res.Violations {
		if v.Kind == AssertionViolation && strings.Contains(v.Data, "DERIVED") {
			found = true
		}
	}
	if !found {
		t.Errorf("clock assertion mismatch not reported: %v", res.Violations)
	}
}

func TestPinnedClockMatchingDriverClean(t *testing.T) {
	b := netlist.NewBuilder("pinned-ok")
	b.SetPeriod(50 * tick.NS)
	b.SetClockUnit(5 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	src := b.Net("SRC .P1-2")
	derived := b.Net("DERIVED .P2-3") // high 10–15 = SRC (5–10) + 5 ns
	b.Buf("CKBUF", tick.R(5, 5), []netlist.NetID{derived}, netlist.Conns(src))
	d := b.MustBuild()
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() {
		t.Errorf("matching clock driver should be clean: %v", res.Violations)
	}
}

func TestWiredOr(t *testing.T) {
	b := netlist.NewBuilder("wired-or")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	b.SetPrecisionSkew(tick.Range{})
	b.SetWiredOr(true)
	a := b.Net("A .P1-2") // high 1–2 ns... clock units default 1ns: high 10–20? no: cu 1ns → high 1–2
	c := b.Net("C .P30-40")
	bus := b.Net("BUS")
	// Two gate outputs tied together: their OR appears on the bus.
	b.Buf("DRV A", tick.Range{}, []netlist.NetID{bus}, netlist.Conns(a))
	b.Buf("DRV C", tick.Range{}, []netlist.NetID{bus}, netlist.Conns(c))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := d.NetByName("BUS")
	w := res.Cases[0].Waves[id]
	if w.At(ns(1.5)) != values.V1 || w.At(ns(35)) != values.V1 {
		t.Errorf("wired-OR should show both pulses: %v", w)
	}
	if w.At(ns(25)) != values.V0 || w.At(ns(45)) != values.V0 {
		t.Errorf("wired-OR idle should be low: %v", w)
	}
}

func TestWiredOrRejectedWithoutOptIn(t *testing.T) {
	b := netlist.NewBuilder("no-wired-or")
	b.SetPeriod(50 * tick.NS)
	bus := b.Net("BUS")
	a := b.Net("A .S0-25")
	b.Buf("D1", tick.Range{}, []netlist.NetID{bus}, netlist.Conns(a))
	b.Buf("D2", tick.Range{}, []netlist.NetID{bus}, netlist.Conns(a))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "wired-OR") {
		t.Errorf("multi-driver without opt-in should fail: %v", err)
	}
}

// TestDeterminism: two runs over the same design produce identical
// violations, statistics counters and waveforms — the reproducibility a
// daily-regression workflow (§3.3.1) depends on.
func TestDeterminism(t *testing.T) {
	d := buildFig25(t)
	a, err := Run(d, Options{KeepWaves: true, Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, Options{KeepWaves: true, Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts differ: %d vs %d", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i].String() != b.Violations[i].String() {
			t.Errorf("violation %d differs: %v vs %v", i, a.Violations[i], b.Violations[i])
		}
	}
	if a.Stats.Events != b.Stats.Events || a.Stats.PrimEvals != b.Stats.PrimEvals {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Margins) != len(b.Margins) {
		t.Errorf("margins differ: %d vs %d", len(a.Margins), len(b.Margins))
	}
	for i := range a.Cases[0].Waves {
		if !a.Cases[0].Waves[i].Equal(b.Cases[0].Waves[i]) {
			t.Fatalf("waveform %d differs", i)
		}
	}
}
