package values

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/tick"
)

// Segment is one node of the linked-list value representation in the paper
// (Fig 2-7): a signal value and the duration for which it holds.
type Segment struct {
	V Value
	W tick.Time // strictly positive
}

// Waveform represents the value of a signal over one clock period, plus the
// separately-carried skew (§2.8).  The segment widths always sum exactly to
// the period — the same consistency rule the paper imposes on its VALUE
// lists.  Waveforms are periodic: time indexes are taken modulo the period.
//
// Skew records the accumulated min/max delay uncertainty of a signal that
// has only been *delayed*, never combined with another changing signal.
// Because a pure delay shifts every transition of the waveform by the same
// amount, carrying the uncertainty out-of-band preserves pulse widths
// (Fig 2-8); it is folded into the segments as RISE/FALL/CHANGE bands only
// when the signal is combined with another changing signal (Fig 2-9).
type Waveform struct {
	Period tick.Time
	Skew   tick.Time
	Segs   []Segment
}

// Const returns a waveform holding v for the entire period.
func Const(period tick.Time, v Value) Waveform {
	return ConstA(period, v, nil)
}

// ConstA is Const allocating the segment list from a (nil a → heap).
func ConstA(period tick.Time, v Value, a *Arena) Waveform {
	if period <= 0 {
		panic("values: non-positive period")
	}
	return Waveform{Period: period, Segs: append(a.newSegs(1), Segment{V: v, W: period})}
}

// Span paints value V over [Start, End) when building a waveform.  A span
// may wrap around the cycle boundary (Start > End); Start == End paints
// nothing.
type Span struct {
	Start, End tick.Time
	V          Value
}

// FromSpans builds a waveform holding base everywhere except where the
// spans, painted in order, override it.
func FromSpans(period tick.Time, base Value, spans ...Span) Waveform {
	w := Const(period, base)
	for _, s := range spans {
		w = w.Paint(s.Start, s.End, s.V)
	}
	return w
}

// Check validates the structural invariants: positive period, positive
// segment widths, widths summing exactly to the period, non-negative skew.
func (w Waveform) Check() error {
	if w.Period <= 0 {
		return fmt.Errorf("values: non-positive period %v", w.Period)
	}
	if w.Skew < 0 {
		return fmt.Errorf("values: negative skew %v", w.Skew)
	}
	if len(w.Segs) == 0 {
		return fmt.Errorf("values: empty segment list")
	}
	var sum tick.Time
	for i, s := range w.Segs {
		if s.W <= 0 {
			return fmt.Errorf("values: segment %d has non-positive width %v", i, s.W)
		}
		if !s.V.Valid() {
			return fmt.Errorf("values: segment %d has invalid value %d", i, uint8(s.V))
		}
		sum += s.W
	}
	if sum != w.Period {
		return fmt.Errorf("values: segment widths sum to %v, want period %v", sum, w.Period)
	}
	return nil
}

// normalize merges adjacent equal-valued segments and drops zero-width
// ones.  The first segment stays anchored at time 0; the first and last
// segments may legitimately hold the same value (a run crossing the cycle
// boundary).
func (w Waveform) normalize() Waveform {
	return w.normalizeA(nil)
}

func (w Waveform) normalizeA(a *Arena) Waveform {
	out := a.newSegs(len(w.Segs))
	for _, s := range w.Segs {
		if s.W == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].V == s.V {
			out[n-1].W += s.W
			continue
		}
		out = append(out, s)
	}
	w.Segs = out
	return w
}

// normalizeOwned is normalize for a waveform that exclusively owns its
// freshly built segment slice: compaction happens in place, allocating
// nothing.  Must not be called on a slice that may be shared.
func (w Waveform) normalizeOwned() Waveform {
	out := w.Segs[:0]
	for _, s := range w.Segs {
		if s.W == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].V == s.V {
			out[n-1].W += s.W
			continue
		}
		out = append(out, s)
	}
	w.Segs = out
	return w
}

// ConstantValue reports whether the waveform holds a single value for the
// whole period (considering wrap-around) and, if so, which.
func (w Waveform) ConstantValue() (Value, bool) {
	v := w.Segs[0].V
	for _, s := range w.Segs[1:] {
		if s.V != v {
			return 0, false
		}
	}
	return v, true
}

// At returns the value at time t (taken modulo the period).
func (w Waveform) At(t tick.Time) Value {
	t = tick.Mod(t, w.Period)
	var pos tick.Time
	for _, s := range w.Segs {
		pos += s.W
		if t < pos {
			return s.V
		}
	}
	return w.Segs[len(w.Segs)-1].V
}

// Paint returns a copy with value v over [start, end), both taken modulo
// the period.  A span at least one period long — end ≥ start + period —
// paints everything (the assertion "XYZ .S15-70" on a 50-unit cycle means
// always stable).  Start > end wraps around the cycle boundary and paints
// end - start + period; a span whose endpoints coincide modulo the period
// without covering it (start == end, start == end + period, a span ending
// exactly at the cycle boundary expressed as end == 0, ...) has zero
// effective width and paints nothing.
func (w Waveform) Paint(start, end tick.Time, v Value) Waveform {
	return w.PaintA(start, end, v, nil)
}

// PaintA is Paint allocating scratch from a (nil a → heap).
func (w Waveform) PaintA(start, end tick.Time, v Value, a *Arena) Waveform {
	if end-start >= w.Period {
		out := ConstA(w.Period, v, a)
		out.Skew = w.Skew
		return out
	}
	s := tick.Mod(start, w.Period)
	e := tick.Mod(end, w.Period)
	if s == e {
		return w
	}
	if s < e {
		return w.paintLinear(s, e, v, a)
	}
	// Wrapping span: paint the tail and the head separately.
	return w.paintLinear(s, w.Period, v, a).paintLinear(0, e, v, a)
}

func (w Waveform) paintLinear(s, e tick.Time, v Value, a *Arena) Waveform {
	out := Waveform{Period: w.Period, Skew: w.Skew}
	out.Segs = a.newSegs(len(w.Segs) + 2)
	var pos tick.Time
	for _, seg := range w.Segs {
		segStart, segEnd := pos, pos+seg.W
		pos = segEnd
		if lo, hi := segStart, min(segEnd, s); hi > lo {
			out.Segs = append(out.Segs, Segment{V: seg.V, W: hi - lo})
		}
		if lo, hi := max(segStart, s), min(segEnd, e); hi > lo {
			out.Segs = append(out.Segs, Segment{V: v, W: hi - lo})
		}
		if lo, hi := max(segStart, e), segEnd; hi > lo {
			out.Segs = append(out.Segs, Segment{V: seg.V, W: hi - lo})
		}
	}
	return out.normalizeOwned()
}

// Rotate shifts the waveform later in time by d: out(t) = in(t-d).
// d may be negative or exceed the period.
func (w Waveform) Rotate(d tick.Time) Waveform {
	return w.RotateA(d, nil)
}

// RotateA is Rotate allocating scratch from a (nil a → heap).
func (w Waveform) RotateA(d tick.Time, a *Arena) Waveform {
	d = tick.Mod(d, w.Period)
	if d == 0 {
		out := w
		out.Segs = append(a.newSegs(len(w.Segs)), w.Segs...)
		return out.normalizeOwned()
	}
	// The original point at time P-d becomes the new time 0.
	cut := w.Period - d
	out := Waveform{Period: w.Period, Skew: w.Skew}
	out.Segs = a.newSegs(len(w.Segs) + 1)
	var pos tick.Time
	tail := a.newSegs(len(w.Segs))
	for _, seg := range w.Segs {
		segStart, segEnd := pos, pos+seg.W
		pos = segEnd
		switch {
		case segEnd <= cut:
			tail = append(tail, seg)
		case segStart >= cut:
			out.Segs = append(out.Segs, seg)
		default: // the cut splits this segment
			tail = append(tail, Segment{V: seg.V, W: cut - segStart})
			out.Segs = append(out.Segs, Segment{V: seg.V, W: segEnd - cut})
		}
	}
	out.Segs = append(out.Segs, tail...)
	return out.normalizeOwned()
}

// Delay applies a min/max propagation delay (Fig 2-8): the waveform is
// shifted by the minimum delay, and the delay uncertainty accumulates into
// the out-of-band skew.
func (w Waveform) Delay(r tick.Range) Waveform {
	return w.DelayA(r, nil)
}

// DelayA is Delay allocating scratch from a (nil a → heap).
func (w Waveform) DelayA(r tick.Range, a *Arena) Waveform {
	if !r.Valid() {
		panic(fmt.Sprintf("values: invalid delay range %v", r))
	}
	out := w.RotateA(r.Min, a)
	out.Skew += r.Width()
	return out
}

// DelayRF applies direction-dependent propagation delays (§4.2.2, the
// nMOS-style asymmetric case the paper leaves as future work): output
// rising edges take the rise delay, falling edges the fall delay.
//
// The exact treatment needs the signal's value, so it applies when the
// waveform is value-known (only 0 and 1 segments — clock circuitry, which
// is exactly where the paper says values are known).  Each high interval
// [s,e) becomes a RISE band over [s+rise.Min, s+rise.Max), a solid 1 until
// e+fall.Min, and a FALL band until e+fall.Max; a pulse whose delayed
// edges could cross becomes a CHANGE region (it may vanish entirely).
// For value-unknown waveforms the paper's conservative rule applies: the
// envelope of the two delays (their combined min/max).
func (w Waveform) DelayRF(rise, fall tick.Range) Waveform {
	return w.DelayRFA(rise, fall, nil)
}

// DelayRFA is DelayRF allocating scratch from a (nil a → heap).
func (w Waveform) DelayRFA(rise, fall tick.Range, a *Arena) Waveform {
	if !rise.Valid() || !fall.Valid() {
		panic(fmt.Sprintf("values: invalid rise/fall delay %v %v", rise, fall))
	}
	if rise == fall {
		return w.DelayA(rise, a)
	}
	env := tick.Range{Min: min(rise.Min, fall.Min), Max: max(rise.Max, fall.Max)}
	for _, s := range w.Segs {
		if s.V != V0 && s.V != V1 {
			return w.DelayA(env, a)
		}
	}
	if v, ok := w.ConstantValue(); ok {
		return ConstA(w.Period, v, a).WithSkew(w.Skew)
	}
	// The carried skew shifts both edge kinds alike; fold it into the
	// per-edge uncertainty.
	rise = tick.Range{Min: rise.Min, Max: rise.Max + w.Skew}
	fall = tick.Range{Min: fall.Min, Max: fall.Max + w.Skew}
	out := ConstA(w.Period, V0, a)
	for _, r := range w.Runs() {
		if r.V != V1 {
			continue
		}
		s, e := r.Start, r.End()
		riseEnd, fallStart := s+rise.Max, e+fall.Min
		if riseEnd >= fallStart {
			// The delayed edges may cross: the pulse may be arbitrarily
			// narrow or absent.
			out = out.PaintA(s+rise.Min, e+fall.Max, VC, a)
			continue
		}
		out = out.PaintA(s+rise.Min, riseEnd, VR, a)
		out = out.PaintA(riseEnd, fallStart, V1, a)
		out = out.PaintA(fallStart, e+fall.Max, VF, a)
	}
	return out
}

// WithSkew returns a copy with the given skew.
func (w Waveform) WithSkew(s tick.Time) Waveform {
	if s < 0 {
		panic("values: negative skew")
	}
	w.Skew = s
	return w
}

// MapUnary applies f pointwise.  Skew is preserved: a pointwise function of
// a single signal commutes with the uniform time shift skew represents.
func (w Waveform) MapUnary(f func(Value) Value) Waveform {
	return w.MapUnaryA(f, nil)
}

// MapUnaryA is MapUnary allocating scratch from a (nil a → heap).
func (w Waveform) MapUnaryA(f func(Value) Value, a *Arena) Waveform {
	out := Waveform{Period: w.Period, Skew: w.Skew, Segs: a.makeSegs(len(w.Segs))}
	for i, s := range w.Segs {
		out.Segs[i] = Segment{V: f(s.V), W: s.W}
	}
	return out.normalizeOwned()
}

// IncorporateSkew folds the out-of-band skew into the segments (Fig 2-9):
// every transition a→b widens into a band of Mix(a, b) of the skew's
// duration, because the transition may occur anywhere within it.
func (w Waveform) IncorporateSkew() Waveform {
	return w.IncorporateSkewA(nil)
}

// IncorporateSkewA is IncorporateSkew allocating scratch from a (nil a →
// heap).
func (w Waveform) IncorporateSkewA(a *Arena) Waveform {
	if w.Skew == 0 {
		return w.normalizeA(a)
	}
	if v, ok := w.ConstantValue(); ok {
		return ConstA(w.Period, v, a)
	}
	runs := w.Runs()
	if w.Skew >= w.Period {
		// Total uncertainty: the value at any instant could be any point
		// of the waveform mid-transition.
		acc := runs[0].V
		for i := 0; i < 2; i++ { // fold twice: the window wraps the cycle
			for _, r := range runs {
				acc = Mix(acc, r.V)
			}
		}
		return ConstA(w.Period, acc, a)
	}
	// Work in linear (unrolled) time over [0, 2P): each run appears twice.
	type linRun struct {
		start, end tick.Time
		v          Value
	}
	lin := make([]linRun, 0, 2*len(runs))
	for lap := tick.Time(0); lap < 2; lap++ {
		for _, r := range runs {
			lin = append(lin, linRun{r.Start + lap*w.Period, r.Start + r.Width + lap*w.Period, r.V})
		}
	}
	sort.Slice(lin, func(i, j int) bool { return lin[i].start < lin[j].start })

	// Elementary boundaries: run starts and run starts shifted by skew.
	bounds := a.newTimes(2*len(runs) + 1)
	bounds = append(bounds, 0)
	for _, r := range runs {
		bounds = append(bounds, tick.Mod(r.Start, w.Period))
		bounds = append(bounds, tick.Mod(r.Start+w.Skew, w.Period))
	}
	bounds = sortDedup(bounds)

	out := Waveform{Period: w.Period}
	out.Segs = a.newSegs(len(bounds))
	for i, b := range bounds {
		next := w.Period
		if i+1 < len(bounds) {
			next = bounds[i+1]
		}
		if next == b {
			continue
		}
		// Value over [b, next): fold Mix over every run intersecting the
		// closed window [t-skew, t] at t = b, oldest first.
		t := b + w.Period // shift sample into the second lap
		w0, w1 := t-w.Skew, t
		var acc Value
		first := true
		for _, r := range lin {
			if r.start <= w1 && w0 < r.end {
				if first {
					acc = r.v
					first = false
				} else {
					acc = Mix(acc, r.v)
				}
			}
		}
		if first {
			acc = VU // unreachable: runs cover all time
		}
		out.Segs = append(out.Segs, Segment{V: acc, W: next - b})
	}
	return out.normalizeOwned()
}

// sortDedup sorts the boundary list ascending and removes duplicates in
// place.
func sortDedup(ts []tick.Time) []tick.Time {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Combine merges two waveforms pointwise with f.  If either operand is
// constant over the period, the other's skew is preserved (a constant adds
// no transition of its own, so the result is still a pure delayed copy).
// Otherwise both skews are incorporated first, as the paper requires when
// two changing signals meet (§2.8).
func Combine(a, b Waveform, f func(Value, Value) Value) Waveform {
	return CombineA(a, b, f, nil)
}

// CombineA is Combine allocating scratch from ar (nil ar → heap).
func CombineA(a, b Waveform, f func(Value, Value) Value, ar *Arena) Waveform {
	if a.Period != b.Period {
		panic(fmt.Sprintf("values: combining waveforms with different periods %v and %v", a.Period, b.Period))
	}
	if v, ok := a.ConstantValue(); ok {
		return b.MapUnaryA(func(x Value) Value { return f(v, x) }, ar)
	}
	if v, ok := b.ConstantValue(); ok {
		return a.MapUnaryA(func(x Value) Value { return f(x, v) }, ar)
	}
	ai := a.IncorporateSkewA(ar)
	bi := b.IncorporateSkewA(ar)
	bounds := mergedBoundariesA(ai, bi, ar)
	out := Waveform{Period: a.Period}
	out.Segs = ar.newSegs(len(bounds))
	for i, t := range bounds {
		next := a.Period
		if i+1 < len(bounds) {
			next = bounds[i+1]
		}
		if next == t {
			continue
		}
		out.Segs = append(out.Segs, Segment{V: f(ai.At(t), bi.At(t)), W: next - t})
	}
	return out.normalizeOwned()
}

// CombineN folds waveforms left to right with f.
func CombineN(f func(Value, Value) Value, ws ...Waveform) Waveform {
	return CombineNA(f, ws, nil)
}

// CombineNA is CombineN allocating scratch from ar (nil ar → heap).
func CombineNA(f func(Value, Value) Value, ws []Waveform, ar *Arena) Waveform {
	if len(ws) == 0 {
		panic("values: CombineN of nothing")
	}
	out := ws[0]
	for _, w := range ws[1:] {
		out = CombineA(out, w, f, ar)
	}
	return out
}

// CombineAll merges any number of waveforms pointwise with an n-ary
// function (needed where the fold is not associative, e.g. multiplexer
// data selection).  As with Combine, when at most one operand is
// non-constant its skew is preserved; otherwise every skew is incorporated
// first.
func CombineAll(f func([]Value) Value, ws ...Waveform) Waveform {
	return CombineAllA(f, ws, nil)
}

// CombineAllA is CombineAll allocating scratch from ar (nil ar → heap).
func CombineAllA(f func([]Value) Value, ws []Waveform, ar *Arena) Waveform {
	if len(ws) == 0 {
		panic("values: CombineAll of nothing")
	}
	period := ws[0].Period
	consts := make([]Value, len(ws))
	varying := -1
	nVarying := 0
	for i, w := range ws {
		if w.Period != period {
			panic("values: CombineAll with mismatched periods")
		}
		if v, ok := w.ConstantValue(); ok {
			consts[i] = v
		} else {
			varying = i
			nVarying++
		}
	}
	vs := make([]Value, len(ws))
	switch nVarying {
	case 0:
		copy(vs, consts)
		return ConstA(period, f(vs), ar)
	case 1:
		return ws[varying].MapUnaryA(func(x Value) Value {
			copy(vs, consts)
			vs[varying] = x
			return f(vs)
		}, ar)
	}
	inc := make([]Waveform, len(ws))
	nb := 1
	for i, w := range ws {
		inc[i] = w.IncorporateSkewA(ar)
		nb += len(inc[i].Segs)
	}
	bounds := append(ar.newTimes(nb), 0)
	for i := range inc {
		var pos tick.Time
		for _, s := range inc[i].Segs {
			bounds = append(bounds, pos)
			pos += s.W
		}
	}
	bounds = sortDedup(bounds)
	out := Waveform{Period: period}
	out.Segs = ar.newSegs(len(bounds))
	for i, t := range bounds {
		next := period
		if i+1 < len(bounds) {
			next = bounds[i+1]
		}
		if next == t {
			continue
		}
		for j := range inc {
			vs[j] = inc[j].At(t)
		}
		out.Segs = append(out.Segs, Segment{V: f(vs), W: next - t})
	}
	return out.normalizeOwned()
}

// mergedBoundariesA merges the segment boundaries of two waveforms into
// one sorted, deduplicated list.  Both boundary sequences are already
// ascending (cumulative sums of positive widths), so this is a two-pointer
// merge with no map and no sort.
func mergedBoundariesA(a, b Waveform, ar *Arena) []tick.Time {
	out := ar.newTimes(len(a.Segs) + len(b.Segs))
	var pa, pb tick.Time
	ia, ib := 0, 0
	for ia < len(a.Segs) || ib < len(b.Segs) {
		var t tick.Time
		switch {
		case ib >= len(b.Segs) || (ia < len(a.Segs) && pa <= pb):
			t = pa
			if pa == pb && ib < len(b.Segs) {
				pb += b.Segs[ib].W
				ib++
			}
			pa += a.Segs[ia].W
			ia++
		default:
			t = pb
			pb += b.Segs[ib].W
			ib++
		}
		if n := len(out); n == 0 || out[n-1] != t {
			out = append(out, t)
		}
	}
	return out
}

// Equal reports semantic equality: same period, same skew, and the same
// value at every instant (segmentation may differ).
func (w Waveform) Equal(o Waveform) bool {
	if w.Period != o.Period || w.Skew != o.Skew {
		return false
	}
	for _, t := range mergedBoundariesA(w, o, nil) {
		if w.At(t) != o.At(t) {
			return false
		}
	}
	return true
}

// String renders the waveform in a compact listing form, e.g.
// "S 0.0:5.5 C 5.5:25.5 S 25.5:50.0" with times in nanoseconds, plus the
// skew when nonzero.
func (w Waveform) String() string {
	var sb strings.Builder
	var pos tick.Time
	for i, s := range w.Segs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s %s:%s", s.V, pos, pos+s.W)
		pos += s.W
	}
	if w.Skew != 0 {
		fmt.Fprintf(&sb, " (skew %s)", w.Skew)
	}
	return sb.String()
}
