// Package explore implements automatic case exploration (-explore): it
// finds the control-signal splits that discharge U/C-poisoned constraint
// sites, replacing the designer's hand-written case directives of §2.7
// with a search.
//
// The paper leaves case selection to the designer: when a constraint site
// is reached by unknown (U) or spuriously-changing (C) values, a human
// picks the control signals to split on and re-runs.  This engine runs
// that loop mechanically:
//
//  1. Verify the design with its declared cases stripped and collect the
//     violations whose observed waveforms carry U or C — the poisoned
//     sites that case analysis exists to discharge.  Real worst-case
//     timing errors (clean waveforms, negative slack) are left alone: no
//     case split can fix those.
//  2. Rank candidate control signals — undriven, unpinned nets whose
//     assertion leaves their value open — by how many poisoned sites
//     their structural forward cone (netlist.ForwardCone) reaches.  A
//     split can only discharge sites it feeds.
//  3. Probe the top candidates with S→0 and S→1 splits.  Each probe is
//     one incremental case evaluation (verify.Verifier.EvalCase) resumed
//     from the retained fixed point, tape-accelerated: only the
//     candidate's cone re-relaxes, so a probe costs a small fraction of a
//     full verification.
//  4. Cover the poisoned sites with a greedy set cover over the probe
//     outcomes, tie-broken on declared net order, then prune the cover to
//     irredundancy: a split whose removal discharges no fewer sites is
//     dropped.  The emitted case set — the binary product of the
//     surviving splits, spelled exactly like parser case directives — is
//     therefore minimal: dropping any one split re-poisons some site.
//  5. Re-verify the design under the emitted case set (a full run, warm
//     on the design's engine cache) and attach the exploration report.
//
// Every step is deterministic — structural ranking, declared-order
// tie-breaks, and probe outcomes that verify guarantees bit-identical
// across Workers, IntraWorkers, cache and tape settings — so the explore
// report is byte-identical across all engine configurations.
package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"scaldtv/internal/assertion"
	"scaldtv/internal/netlist"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

const (
	// maxSplits caps the cover at 2^maxSplits emitted cases — beyond
	// four nested splits the designer should restructure, not enumerate.
	maxSplits = 4
	// maxProbed caps the candidates probed per run; candidates ranked
	// beyond the cap are reported with Probes == 0 and counted in
	// Exploration.Skipped, never silently dropped.
	maxProbed = 24
)

// Run explores the design and returns the verification result under the
// discovered minimal case set, with Result.Exploration filled.
func Run(d *netlist.Design, opts verify.Options) (*verify.Result, error) {
	return RunContext(context.Background(), d, opts)
}

// RunContext is Run with cooperative cancellation.
func RunContext(ctx context.Context, d *netlist.Design, opts verify.Options) (*verify.Result, error) {
	start := time.Now()

	// Probe options: the search needs violations only, not waveforms,
	// margins or the statistical post-pass — those belong to the final
	// run the caller sees.
	popts := opts
	popts.Explore = false
	popts.KeepWaves = false
	popts.Margins = false
	popts.Delays = verify.DelayWorstCase
	fopts := opts
	fopts.Explore = false

	// Declared cases are stripped for the base run: the engine discovers
	// its own splits, and on designs that already carry hand-written case
	// directives the discovered set can be compared against them.
	base := d.WithCases(nil)
	V := verify.NewVerifier(base, popts)
	bres, err := V.VerifyContext(ctx)
	if err != nil {
		return nil, err
	}

	ex := &verify.Exploration{Minimal: true}
	sites, anchors := poisonedSites(d, bres)
	ex.Sites = sites

	probes := 0
	var chosen []int // candidate indexes, declared order
	var cands []candidate
	if len(sites) > 0 && converged(bres) {
		cands = rankCandidates(d, anchors)
		if len(cands) > maxProbed {
			for _, c := range cands[maxProbed:] {
				if c.sites > 0 {
					ex.Skipped++
				}
			}
		}

		// Probe phase: each candidate's two single-split branches, each
		// an incremental relaxation from the retained fixed point.
		siteKeys := make(map[string]int, len(sites))
		for i, s := range sites {
			siteKeys[s.Key()] = i
		}
		for ci := range cands {
			if ci >= maxProbed || cands[ci].sites == 0 {
				continue
			}
			c := &cands[ci]
			discharged := make([]bool, len(sites))
			for i := range discharged {
				discharged[i] = true
			}
			for _, val := range []values.Value{values.V0, values.V1} {
				cr, err := V.EvalCase(splitCase([]split{{c.base, val}}))
				if err != nil {
					return nil, fmt.Errorf("explore: probing %q: %w", c.base, err)
				}
				c.probes++
				probes++
				for _, viol := range cr.Violations {
					if i, ok := siteKeys[violationKey(viol)]; ok {
						discharged[i] = false
					}
				}
			}
			for i, ok := range discharged {
				if ok {
					c.discharges = append(c.discharges, i)
				}
			}
		}

		// Greedy set cover: each round picks the candidate discharging
		// the most still-poisoned sites, iterating in declared net order
		// so ties break on declaration order, not rank.
		decl := make([]int, len(cands))
		for i := range decl {
			decl[i] = i
		}
		sort.Slice(decl, func(i, j int) bool {
			return cands[decl[i]].nets[0] < cands[decl[j]].nets[0]
		})
		covered := make([]bool, len(sites))
		for len(chosen) < maxSplits {
			best, bestGain := -1, 0
			for _, ci := range decl {
				if cands[ci].chosen {
					continue
				}
				gain := 0
				for _, si := range cands[ci].discharges {
					if !covered[si] {
						gain++
					}
				}
				if gain > bestGain {
					best, bestGain = ci, gain
				}
			}
			if best < 0 {
				break
			}
			cands[best].chosen = true
			chosen = append(chosen, best)
			for _, si := range cands[best].discharges {
				covered[si] = true
			}
		}
		// Declared order for products and reports.
		sort.Slice(chosen, func(i, j int) bool {
			return cands[chosen[i]].nets[0] < cands[chosen[j]].nets[0]
		})

		// Irredundancy prune: drop any split whose removal still
		// discharges every covered site, re-probing the reduced product
		// each time.  What survives is minimal by construction.
		target := jointDischarged(V, cands, chosen, sites, siteKeys, &probes)
		for i := 0; i < len(chosen); {
			reduced := append(append([]int(nil), chosen[:i]...), chosen[i+1:]...)
			if covers(jointDischarged(V, cands, reduced, sites, siteKeys, &probes), target) {
				cands[chosen[i]].chosen = false
				chosen = reduced
				target = jointDischarged(V, cands, chosen, sites, siteKeys, &probes)
				i = 0
				continue
			}
			i++
		}
	}

	// Final run: the design under the emitted case set (or its own
	// declared cases when the search found nothing to split on).
	fd := d
	var caseSet []netlist.Case
	if len(chosen) > 0 {
		caseSet = productCases(cands, chosen)
		fd = d.WithCases(caseSet)
	}
	final, err := verify.RunContext(ctx, fd, fopts)
	if err != nil {
		return nil, err
	}

	// Report: discharge is judged against the final run — ground truth,
	// not the probes.
	finalKeys := make(map[string]bool, len(final.Violations))
	for _, viol := range final.Violations {
		finalKeys[violationKey(viol)] = true
	}
	for i := range ex.Sites {
		ex.Sites[i].Discharged = !finalKeys[ex.Sites[i].Key()]
	}
	for _, ci := range chosen {
		c := &cands[ci]
		ex.Chosen = append(ex.Chosen, c.base)
		for si := range ex.Sites {
			if anchorIn(anchors[si], c.cone) {
				ex.Sites[si].By = append(ex.Sites[si].By, c.base)
			}
		}
	}
	for _, c := range cands {
		ec := verify.ExploreCandidate{
			Base:       c.base,
			Sites:      c.sites,
			ConePrims:  c.cone.PrimCount,
			ConeNets:   c.cone.NetCount,
			Probes:     c.probes,
			Discharges: c.discharges,
			Chosen:     c.chosen,
		}
		for _, id := range c.nets {
			ec.Nets = append(ec.Nets, d.Nets[id].Name)
		}
		ex.Candidates = append(ex.Candidates, ec)
	}
	for _, cs := range caseSet {
		ex.CaseSet = append(ex.CaseSet, cs.Label)
	}
	ex.Residual = len(final.Violations)

	final.Exploration = ex
	final.Stats.ExploreCandidates = len(cands)
	final.Stats.ExploreProbes = probes
	final.Stats.ExploreTime = time.Since(start)
	return final, nil
}

// candidate is one control-signal base under consideration.
type candidate struct {
	base       string
	nets       []netlist.NetID
	cone       netlist.Cone
	sites      int // poisoned sites inside the cone
	probes     int
	discharges []int
	chosen     bool
}

// split is one S→v assignment.
type split struct {
	base string
	val  values.Value
}

// splitCase spells a case the way the parser does: "BASE = v" labels
// joined with ", ", so emitted sets read back as case directives.
func splitCase(splits []split) netlist.Case {
	var c netlist.Case
	var labels []string
	for _, s := range splits {
		v := 0
		if s.val == values.V1 {
			v = 1
		}
		labels = append(labels, fmt.Sprintf("%s = %d", s.base, v))
		c.Assignments = append(c.Assignments, netlist.CaseAssign{Base: s.base, Value: s.val})
	}
	c.Label = strings.Join(labels, ", ")
	return c
}

// productCases enumerates the binary product of the chosen splits, first
// declared base varying slowest — the order a designer would write.
func productCases(cands []candidate, chosen []int) []netlist.Case {
	n := len(chosen)
	out := make([]netlist.Case, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		splits := make([]split, n)
		for i, ci := range chosen {
			v := values.V0
			if bits&(1<<(n-1-i)) != 0 {
				v = values.V1
			}
			splits[i] = split{cands[ci].base, v}
		}
		out = append(out, splitCase(splits))
	}
	return out
}

// jointDischarged probes the product of the given splits and reports
// which sites none of the product cases violate.
func jointDischarged(V *verify.Verifier, cands []candidate, chosen []int,
	sites []verify.ExploredSite, siteKeys map[string]int, probes *int) []bool {
	discharged := make([]bool, len(sites))
	if len(chosen) == 0 {
		return discharged
	}
	for i := range discharged {
		discharged[i] = true
	}
	for _, c := range productCases(cands, chosen) {
		cr, err := V.EvalCase(c)
		if err != nil {
			// A failing probe discharges nothing; the caller's cover
			// keeps the larger set, which stays sound.
			return make([]bool, len(sites))
		}
		*probes++
		for _, viol := range cr.Violations {
			if i, ok := siteKeys[violationKey(viol)]; ok {
				discharged[i] = false
			}
		}
	}
	return discharged
}

// covers reports a ⊇ b.
func covers(a, b []bool) bool {
	for i := range b {
		if b[i] && !a[i] {
			return false
		}
	}
	return true
}

// anchor locates a violation site in the design for cone-membership
// tests: a checker primitive, or the asserted net of an assertion
// cross-check.
type anchor struct {
	prim netlist.PrimID
	net  netlist.NetID
	kind int // 0 prim, 1 net, -1 unresolved
}

func anchorIn(a anchor, c netlist.Cone) bool {
	switch a.kind {
	case 0:
		return c.Prims[a.prim]
	case 1:
		return c.Nets[a.net]
	}
	return false
}

// converged reports no ConvergenceViolation in the result — EvalCase
// probes are only valid from a true fixed point.
func converged(res *verify.Result) bool {
	for _, v := range res.Violations {
		if v.Kind == verify.ConvergenceViolation {
			return false
		}
	}
	return true
}

// violationKey identifies a constraint site independent of case label and
// edge time — the identity under which a violation counts as discharged.
func violationKey(v verify.Violation) string {
	return v.Kind.String() + "|" + v.Prim + "|" + v.Data + "|" + v.Clock
}

// poisonedSites collects the distinct U/C-poisoned constraint sites of a
// base run, in violation-report order, with their design anchors.
func poisonedSites(d *netlist.Design, res *verify.Result) ([]verify.ExploredSite, []anchor) {
	primByName := make(map[string]netlist.PrimID, len(d.Prims))
	for i := range d.Prims {
		primByName[d.Prims[i].Name] = netlist.PrimID(i)
	}
	seen := make(map[string]bool)
	var sites []verify.ExploredSite
	var anchors []anchor
	for _, v := range res.Violations {
		if v.Kind == verify.ConvergenceViolation || !poisoned(v) {
			continue
		}
		s := verify.ExploredSite{Kind: v.Kind, Prim: v.Prim, Data: v.Data, Clock: v.Clock}
		if seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		a := anchor{kind: -1}
		if strings.HasPrefix(v.Prim, "assertion ") {
			if id, ok := d.NetByName(v.Data); ok {
				a = anchor{net: id, kind: 1}
			}
		} else if pid, ok := primByName[v.Prim]; ok {
			a = anchor{prim: pid, kind: 0}
		}
		sites = append(sites, s)
		anchors = append(anchors, a)
	}
	return sites, anchors
}

// poisoned reports whether the violation's observed waveforms carry
// unknown or spuriously-changing values — the signature of a missing
// case split, as opposed to a real worst-case timing error.
func poisoned(v verify.Violation) bool {
	if v.Kind == verify.UnknownClockViolation {
		return true
	}
	return hasUC(v.DataWave) || hasUC(v.ClockWave)
}

func hasUC(w values.Waveform) bool {
	for _, s := range w.Segs {
		if s.V == values.VU || s.V == values.VC {
			return true
		}
	}
	return false
}

// rankCandidates lists the splittable control signals — undriven,
// unpinned nets whose assertion leaves the value open (none or STABLE) —
// grouped by base in declared net order, ranked by how many poisoned
// sites their forward cone reaches (descending), declaration order
// breaking ties.
func rankCandidates(d *netlist.Design, anchors []anchor) []candidate {
	var cands []candidate
	index := make(map[string]int)
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.Driver != netlist.NoDriver {
			continue
		}
		if n.Assert != nil && n.Assert.Kind != assertion.None && n.Assert.Kind != assertion.Stable {
			continue
		}
		ci, ok := index[n.Base]
		if !ok {
			ci = len(cands)
			index[n.Base] = ci
			cands = append(cands, candidate{base: n.Base})
		}
		cands[ci].nets = append(cands[ci].nets, netlist.NetID(i))
	}
	for ci := range cands {
		c := &cands[ci]
		c.cone = d.ForwardCone(netlist.Changes{Nets: c.nets})
		for _, a := range anchors {
			if anchorIn(a, c.cone) {
				c.sites++
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].sites != cands[j].sites {
			return cands[i].sites > cands[j].sites
		}
		return cands[i].nets[0] < cands[j].nets[0]
	})
	return cands
}
