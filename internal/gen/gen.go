// Package gen generates synthetic pipelined-processor designs of the
// S-1 Mark IIA's character (§3.3), standing in for the proprietary
// 6357-chip design database the paper evaluates on.  A design is a ring of
// identical pipeline stages built from the Chapter-3 component library —
// register files, ALUs with output latches, multiplexers, OR gates and
// pipeline registers — with the Mark IIA design rules: 50 ns cycle,
// 0.0/2.0 ns default interconnection delay, ±1 ns precision clock skew.
//
// Generated designs are timing-clean by construction; Config.Inject adds
// deliberately slow paths so error reporting can be exercised at scale.
package gen

import (
	"fmt"
	"strings"

	"scaldtv/internal/expand"
	"scaldtv/internal/hdl"
	"scaldtv/internal/lib"
	"scaldtv/internal/netlist"
)

// Config parameterises the generated design.
type Config struct {
	// Chips is the target MSI chip count; it is rounded up to whole
	// pipeline stages.  The paper's example has 6357 chips.
	Chips int
	// Inject adds this many deliberately failing paths (late data into a
	// checked register), for exercising error reporting.
	Inject int
	// Cases appends case-analysis specifications over the stage control
	// signal, exercising incremental reevaluation.
	Cases int
	// VariableCycle adds a variable-length-cycle tail: a two-multiplexer
	// exclusive-path structure (Fig 2-6 at scale) whose timing only
	// closes under case analysis — the design style for which "case
	// analysis is essential" (§3.3.2).  With it set, the design fails
	// without the MODE cases and passes with them.
	VariableCycle bool
	// Width is the datapath width in bits; zero means the Mark IIA's 32.
	// It is rounded up to whole bytes (the byte-multiplexer granularity),
	// with a floor of 8.  Wider datapaths grow the vectored primitives,
	// narrower ones shrink them — the knob for width-scaling studies.
	Width int
	// Depth is the number of chained decode OR-gate levels per stage;
	// zero means the Mark IIA's 2 (the A and B levels).  Deeper chains
	// lengthen the combinational critical path and add topological
	// levels, the knob for wavefront level-scaling studies.
	Depth int
	// Feedback is the fraction of stages (0..1) given a cross-coupled
	// OR pair — a genuine combinational cycle that relaxes to a fixed
	// point — so scheduling over feedback SCCs can be exercised at scale.
	Feedback float64
}

// width resolves the effective datapath width: whole bytes, at least 8.
func (c Config) width() int {
	w := c.Width
	if w <= 0 {
		return 32
	}
	if w < 8 {
		w = 8
	}
	return (w + 7) &^ 7
}

// depth resolves the effective decode-chain depth (at least 1).
func (c Config) depth() int {
	if c.Depth <= 0 {
		return 2
	}
	return c.Depth
}

// chipsPerStage is the MSI chip census of one pipeline stage: 8 OR gates,
// 4 byte multiplexers, 1 ALU, 1 write-enable gate, 1 register file,
// 1 result multiplexer and 1 pipeline register.
const chipsPerStage = 17

// ChipsPerStage reports the chip count of one generated pipeline stage.
func ChipsPerStage() int { return chipsPerStage }

// Stages returns the stage count used for a chip target.
func Stages(chips int) int {
	s := (chips + chipsPerStage - 1) / chipsPerStage
	if s < 1 {
		s = 1
	}
	return s
}

// Source emits the design as HDL text, so generated designs exercise the
// same reader → macro-expander → verifier pipeline the paper measures in
// Table 3-1.
func Source(cfg Config) string {
	stages := Stages(cfg.Chips)
	var sb strings.Builder
	fmt.Fprintf(&sb, "design \"MARK IIA STYLE %d CHIP\"\n", stages*chipsPerStage)
	sb.WriteString(`period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
skew clock -5ns 5ns
`)
	sb.WriteString(lib.Prelude)
	sb.WriteString(`
; Global clocks and controls.  MCK is the pipeline clock (rising at the
; cycle boundary); WCK strobes the register-file writes; ENCK opens the
; ALU output latches.
`)

	w := cfg.width()
	depth := cfg.depth()
	nFB := int(cfg.Feedback*float64(stages) + 0.5)
	if nFB > stages {
		nFB = stages
	}
	// levelNet names the decode chain's level-l output bus of stage s:
	// the historical A and B buses, then X2, X3, ... for deeper chains.
	levelNet := func(s, l int) string {
		switch l {
		case 0:
			return fmt.Sprintf("S%d A", s)
		case 1:
			return fmt.Sprintf("S%d B", s)
		default:
			return fmt.Sprintf("S%d X%d", s, l)
		}
	}
	for s := 0; s < stages; s++ {
		prev := (s + stages - 1) % stages
		q := func(stage int) string { return fmt.Sprintf("STG%d Q", stage) }
		in := q(prev)
		fmt.Fprintf(&sb, "\n; ---- pipeline stage %d ----\n", s)
		// First-level OR gates over input bit pairs.
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&sb, "use \"2 OR 10101\" \"S%d ORA%d\" (A=\"%s\"<%d>, B=\"%s\"<%d>, O=\"%s\"<%d>)\n",
				s, i, in, (2*i)%w, in, (2*i+1)%w, levelNet(s, 0), i)
		}
		// Deeper decode levels: each chains the previous level's bit with
		// a fresh input bit (the historical second level, then the Depth
		// knob's extension — off-path decode logic that stretches the
		// combinational critical path).
		for l := 1; l < depth; l++ {
			name := "ORB"
			if l > 1 {
				name = fmt.Sprintf("ORX%d N", l)
			}
			for i := 0; i < 4; i++ {
				fmt.Fprintf(&sb, "use \"2 OR 10101\" \"S%d %s%d\" (A=\"%s\"<%d>, B=\"%s\"<%d>, O=\"%s\"<%d>)\n",
					s, name, i, levelNet(s, l-1), i, in, (8+i+l-1)%w, levelNet(s, l), i)
			}
		}
		// Byte multiplexers assembling the ALU's B operand.
		nb := w / 8
		for i := 0; i < nb; i++ {
			d1 := ((i + 2) % nb) * 8
			fmt.Fprintf(&sb, "use \"2 MUX 10173\" \"S%d MX%d\" SIZE=8 (S=\"CTRL .S0-8\", D0=\"%s\"<%d:%d>, D1=\"%s\"<%d:%d>, O=\"S%d MX\"<%d:%d>)\n",
				s, i, in, 8*i, 8*i+7, in, d1, d1+7, s, 8*i, 8*i+7)
		}
		// The ALU with its output latch.  The carry comes from the first
		// OR level; the deeper levels model off-path decode logic.
		fmt.Fprintf(&sb, "use \"ALU 10181\" \"S%d ALU\" SIZE=%d (A=\"%s\"<0:%d>, B=\"S%d MX\"<0:%d>, C1=\"S%d A\"<0>, S=\"FN .S0-8\"<0:3>, E=\"ENCK .P4-5\", F=\"S%d F\"<0:%d>)\n",
			s, w, in, w-1, s, w-1, s, s, w-1)
		// Register-file write path: gated write enable plus the 10145A.
		fmt.Fprintf(&sb, "and \"S%d WE GATE\" delay=(1.0,2.9) (-\"WCK .P3-4 L\" &H, -\"WRITE .S0-6 L\") -> (\"S%d WE\")\n", s, s)
		aLo := 16
		if aLo+3 > w-1 {
			aLo = 0
		}
		fmt.Fprintf(&sb, "use \"16W RAM 10145A\" \"S%d RAM\" SIZE=8 (I=\"%s\"<0:7>, A=\"%s\"<%d:%d>, WE=\"S%d WE\", CS=\"CTRL .S0-8\", DO=\"S%d DO\")\n",
			s, in, in, aLo, aLo+3, s, s)
		// Result selection and the pipeline register.
		fmt.Fprintf(&sb, "use \"2 MUX 10173\" \"S%d RES MX\" SIZE=%d (S=\"CTRL2 .S0-8\", D0=\"S%d F\"<0:%d>, D1=\"S%d DO\", O=\"S%d R\"<0:%d>)\n",
			s, w, s, w-1, s, s, w-1)
		fmt.Fprintf(&sb, "use \"REG 10176\" \"S%d REG\" SIZE=%d (CK=\"MCK .P0-4\", I=\"S%d R\"<0:%d>, Q=\"%s\"<0:%d>)\n",
			s, w, s, w-1, q(s), w-1)
		if s < nFB {
			// A cross-coupled OR pair: a genuine combinational cycle that
			// relaxes to a fixed point (OR is monotone in the value
			// lattice), so feedback SCC scheduling is exercised at scale.
			fmt.Fprintf(&sb, "use \"2 OR 10101\" \"S%d FB1\" (A=\"S%d A\"<1>, B=\"S%d FBN2\", O=\"S%d FBN1\")\n", s, s, s, s)
			fmt.Fprintf(&sb, "use \"2 OR 10101\" \"S%d FB2\" (A=\"S%d A\"<2>, B=\"S%d FBN1\", O=\"S%d FBN2\")\n", s, s, s, s)
		}
	}

	// A not-yet-designed input, for the cross-reference listing of §2.5:
	// undriven and unasserted, taken always stable.
	fmt.Fprintf(&sb, "\nuse \"2 OR 10101\" \"SPARE GATE\" (A=\"SPARE IN\", B=\"STG0 Q\"<%d>, O=\"SPARE OUT\")\n", 5%w)

	// Injected failures: a long OR chain whose output misses the set-up
	// of a checked register.
	for i := 0; i < cfg.Inject; i++ {
		fmt.Fprintf(&sb, "\n; ---- injected slow path %d ----\n", i)
		for j := 0; j < 12; j++ {
			a := fmt.Sprintf("\"SLOW%d N%d\"", i, j-1)
			if j == 0 {
				a = "\"STG0 Q\"<0>"
			}
			fmt.Fprintf(&sb, "use \"2 OR 10101\" \"SLOW%d OR%d\" (A=%s, B=\"STG0 Q\"<%d>, O=\"SLOW%d N%d\")\n",
				i, j, a, (j+1)%32, i, j)
		}
		fmt.Fprintf(&sb, "use \"REG 10176\" \"SLOW%d REG\" SIZE=1 (CK=\"MCK .P0-4\", I=\"SLOW%d N11\", Q=\"SLOW%d Q\")\n",
			i, i, i)
	}

	if cfg.VariableCycle {
		// A short-cycle/long-cycle selector: MODE routes the stage-0
		// result either directly or through a 12 ns decode chain, and a
		// second multiplexer guarantees a 16 ns chain is taken at most
		// once.  Without case analysis the apparent two-chain path misses
		// the 2.5 ns register set-up at the cycle boundary.
		sb.WriteString("\n; ---- variable-length-cycle tail (case analysis essential) ----\n")
		sb.WriteString("buf \"VC DELAY A\" delay=(16,16) (\"STG0 Q\"<0>) -> (\"VC D1\")\n")
		sb.WriteString("use \"2 MUX 10173\" \"VC MUX1\" SIZE=1 (S=\"MODE .S0-8\", D0=\"STG0 Q\"<0>, D1=\"VC D1\", O=\"VC M1\")\n")
		sb.WriteString("buf \"VC DELAY B\" delay=(16,16) (\"VC M1\") -> (\"VC D2\")\n")
		sb.WriteString("use \"2 MUX 10173\" \"VC MUX2\" SIZE=1 (S=\"MODE .S0-8\", D0=\"VC D2\", D1=\"VC M1\", O=\"VC R\")\n")
		sb.WriteString("use \"REG 10176\" \"VC REG\" SIZE=1 (CK=\"MCK .P0-4\", I=\"VC R\", Q=\"VC Q\")\n")
	}
	for c := 0; c < cfg.Cases; c++ {
		if cfg.VariableCycle {
			fmt.Fprintf(&sb, "\ncase \"MODE\" = %d\n", c%2)
		} else {
			fmt.Fprintf(&sb, "\ncase \"CTRL\" = %d\n", c%2)
		}
	}
	return sb.String()
}

// Generate parses and expands a generated design.
func Generate(cfg Config) (*netlist.Design, *expand.Report, error) {
	src := Source(cfg)
	f, err := hdl.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("gen: generated source does not parse: %v", err)
	}
	return expand.Expand(f)
}
