// Benchmarks regenerating the paper's tables and figures.  Each benchmark
// corresponds to an artifact of the evaluation chapter; EXPERIMENTS.md
// records paper-vs-measured values.  Run with:
//
//	go test -bench=. -benchmem
package scaldtv

import (
	"fmt"
	"testing"

	"scaldtv/internal/expand"
	"scaldtv/internal/experiments"
	"scaldtv/internal/gen"
	"scaldtv/internal/hdl"
	"scaldtv/internal/logicsim"
	"scaldtv/internal/netlist"
	"scaldtv/internal/pathsearch"
	"scaldtv/internal/stats"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
	"scaldtv/internal/verify"
)

// BenchmarkTable31_FullPipeline times the complete read → expand → verify
// → listings pipeline on Mark IIA-style designs of increasing size, up to
// the paper's 6357-chip example.
func BenchmarkTable31_FullPipeline(b *testing.B) {
	for _, chips := range []int{102, 1003, 6357} {
		b.Run(fmt.Sprintf("chips=%d", chips), func(b *testing.B) {
			var last *experiments.ScaleResult
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunScale(chips, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.Table31.Events), "events")
			b.ReportMetric(float64(last.Table31.Primitives), "prims")
			b.ReportMetric(float64(last.Table31.Verify.Nanoseconds())/float64(last.Table31.Events), "ns/event")
		})
	}
}

// BenchmarkTable31_VerifyOnly isolates the verification phase (the
// paper's 6.75-minute row) on pre-expanded designs, with and without the
// memoized primitive-evaluation cache.  The CI bench job runs the
// chips=1003 pair and compares ns/event and allocs/op across the two
// cache settings; results are bit-identical either way.
func BenchmarkTable31_VerifyOnly(b *testing.B) {
	for _, chips := range []int{1003, 6357, 10009} {
		d, _, err := gen.Generate(gen.Config{Chips: chips})
		if err != nil {
			b.Fatal(err)
		}
		for _, cache := range []bool{true, false} {
			name := fmt.Sprintf("chips=%d/cache=%v", chips, cache)
			b.Run(name, func(b *testing.B) {
				var s verify.Stats
				for i := 0; i < b.N; i++ {
					res, err := verify.Run(d, verify.Options{NoCache: !cache})
					if err != nil {
						b.Fatal(err)
					}
					s = res.Stats
				}
				b.ReportMetric(float64(s.Events), "events")
				if s.Events > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(s.Events), "ns/event")
				}
				if cache {
					b.ReportMetric(float64(s.CacheHits), "hits")
				}
			})
		}
	}
}

// BenchmarkTapeVerify compares the compiled evaluation tape (the default
// engine) against the interpreter (-tape=false) on pre-expanded designs.
// The tape leg runs once before the timer so the program is compiled and
// its persistent caches are warm — the steady state a design iteration
// loop lives in.  The CI bench job gates the chips=10009 pair on a ≥5x
// single-thread win; results are bit-identical either way.
func BenchmarkTapeVerify(b *testing.B) {
	for _, chips := range []int{1003, 10009} {
		d, _, err := gen.Generate(gen.Config{Chips: chips})
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range []string{"tape", "interp"} {
			opts := verify.Options{Workers: 1, NoTape: engine == "interp"}
			b.Run(fmt.Sprintf("chips=%d/engine=%s", chips, engine), func(b *testing.B) {
				if _, err := verify.Run(d, opts); err != nil {
					b.Fatal(err) // warm the program, interner and memos
				}
				b.ResetTimer()
				var s verify.Stats
				for i := 0; i < b.N; i++ {
					res, err := verify.Run(d, opts)
					if err != nil {
						b.Fatal(err)
					}
					s = res.Stats
				}
				b.ReportMetric(float64(s.Events), "events")
				b.ReportMetric(float64(s.TapeCompileTime.Nanoseconds()), "compile-ns")
			})
		}
	}
}

// BenchmarkIncrementalReverify compares from-scratch verification of the
// 1003-chip design against dirty-cone reverification after a
// single-instance delay edit.  Each iteration applies a real edit —
// alternating the chosen instance's Delay.Max by ±1 ps — so no pass can
// be served from an unchanged fixed point.  The edited instance is the
// local-fanout one with the largest forward cone: the generated design's
// cone sizes are bimodal (a shared control spine reaches ~60% of the
// instances; everything else fans out to one or two neighbours), and a
// spine edit rightly degenerates towards a full pass, so the benchmark
// edits the worst case among ordinary instances instead.  The CI bench
// job runs this pair and records the speedup in BENCH_PR3.json.
func BenchmarkIncrementalReverify(b *testing.B) {
	for _, chips := range []int{1003, 10009} {
		d, _, err := gen.Generate(gen.Config{Chips: chips})
		if err != nil {
			b.Fatal(err)
		}
		pi := localConePrim(d)
		edit := func(i int) netlist.Changes {
			d.Prims[pi].Delay.Max += tick.Time(1 - 2*(i%2))
			return netlist.Changes{Prims: []netlist.PrimID{pi}}
		}
		b.Run(fmt.Sprintf("chips=%d/mode=full", chips), func(b *testing.B) {
			var s verify.Stats
			for i := 0; i < b.N; i++ {
				edit(i)
				res, err := verify.Run(d, verify.Options{})
				if err != nil {
					b.Fatal(err)
				}
				s = res.Stats
			}
			b.ReportMetric(float64(s.PrimEvals), "prim-evals")
		})
		b.Run(fmt.Sprintf("chips=%d/mode=incremental", chips), func(b *testing.B) {
			V := verify.NewVerifier(d, verify.Options{})
			if _, err := V.Verify(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var s verify.Stats
			for i := 0; i < b.N; i++ {
				res, err := V.Reverify(edit(i))
				if err != nil {
					b.Fatal(err)
				}
				s = res.Stats
			}
			b.ReportMetric(float64(s.PrimEvals), "prim-evals")
			b.ReportMetric(float64(s.DirtyPrims), "dirty-prims")
			b.ReportMetric(float64(s.ReusedWaves), "reused-waves")
		})
	}
}

// BenchmarkIntraWavefront compares the serial worklist (intra=1) against
// the levelized wavefront scheduler (intra=8) on the 1003-chip design.
// Reports are bit-identical; only schedule and wall-clock differ.  The CI
// bench job runs this pair and records the speedup; on a single-CPU host
// the wavefront's coordination overhead makes intra=1 the faster setting,
// which is why it remains the default.
func BenchmarkIntraWavefront(b *testing.B) {
	const chips = 1003
	d, _, err := gen.Generate(gen.Config{Chips: chips})
	if err != nil {
		b.Fatal(err)
	}
	for _, intra := range []int{1, 8} {
		b.Run(fmt.Sprintf("chips=%d/intra=%d", chips, intra), func(b *testing.B) {
			var s verify.Stats
			for i := 0; i < b.N; i++ {
				res, err := verify.Run(d, verify.Options{IntraWorkers: intra})
				if err != nil {
					b.Fatal(err)
				}
				s = res.Stats
			}
			b.ReportMetric(float64(s.Events), "events")
			if intra > 1 {
				b.ReportMetric(float64(s.Sweeps), "sweeps")
				b.ReportMetric(float64(s.Levels), "levels")
			}
		})
	}
}

// localConePrim picks the non-checker instance with the largest forward
// cone among those whose cone stays local (under a tenth of the
// instances), so the reverify benchmark edits the worst ordinary
// instance rather than the shared control spine.
func localConePrim(d *Design) netlist.PrimID {
	best, bestCone := netlist.PrimID(-1), -1
	limit := len(d.Prims) / 10
	for i := range d.Prims {
		if d.Prims[i].Kind.IsChecker() {
			continue
		}
		id := netlist.PrimID(i)
		c := d.ForwardCone(netlist.Changes{Prims: []netlist.PrimID{id}})
		if c.PrimCount <= limit && c.PrimCount > bestCone {
			best, bestCone = id, c.PrimCount
		}
	}
	return best
}

// BenchmarkTable32_MacroExpansion times the macro expander (the paper's
// Pass 1 + Pass 2 rows) and reports the primitive census.
func BenchmarkTable32_MacroExpansion(b *testing.B) {
	src := gen.Source(gen.Config{Chips: 6357})
	f, err := hdl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *expand.Report
	for i := 0; i < b.N; i++ {
		_, r, err := expand.Expand(f)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(float64(rep.Primitives), "prims")
	b.ReportMetric(rep.AvgWidth(), "avg-width")
	b.ReportMetric(float64(rep.ScalarBits), "scalar-prims")
}

// BenchmarkTable33_StorageModel times the storage accounting over the
// full-scale design's relaxed waveforms.
func BenchmarkTable33_StorageModel(b *testing.B) {
	d, _, err := gen.Generate(gen.Config{Chips: 6357})
	if err != nil {
		b.Fatal(err)
	}
	res, err := verify.Run(d, verify.Options{KeepWaves: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var s stats.Storage
	for i := 0; i < b.N; i++ {
		s = stats.Measure(d, res.Cases[0].Waves)
	}
	b.ReportMetric(float64(s.Total()), "bytes")
	b.ReportMetric(s.AvgValueRecords(), "avg-value-records")
	b.ReportMetric(s.BytesPerSignal(), "bytes/signal")
}

// BenchmarkFig25_RegisterFile verifies the Fig 2-5 register-file example
// (the Fig 3-10/3-11 workload).
func BenchmarkFig25_RegisterFile(b *testing.B) {
	src := `
design "FIG 2-5"
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
` + Library + `
mux2 "ADR MUX" delay=(1.2,3.3) seldelay=(0.3,1.2) ("CLK .P0-4" &Z, "READ ADR .S4-9"<0:3>, "W ADR .S0-6"<0:3>) -> (ADR<0:3>)
wire ADR 0ns 6ns
and "WE GATE" delay=(1.0,2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)
use "16W RAM 10145A" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, CS="CS SEL .S0-8", DO=DO)
use "REG 10176" OUTREG SIZE=32 (CK="CLK .P0-4", I=DO, Q=Q<0:31>)
`
	d, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var nv int
	for i := 0; i < b.N; i++ {
		res, err := Verify(d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		nv = len(res.Violations)
	}
	b.ReportMetric(float64(nv), "violations")
}

// BenchmarkFig26_CaseAnalysis measures the incremental cost of an
// additional case (§2.7, §3.3.2): the second case reevaluates only the
// affected cone.
func BenchmarkFig26_CaseAnalysis(b *testing.B) {
	b.Run("chips=510", func(b *testing.B) {
		var r *experiments.CaseIncrement
		for i := 0; i < b.N; i++ {
			var err error
			r, err = experiments.RunCaseIncrement(510)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(r.FirstEvals), "case1-evals")
		b.ReportMetric(float64(r.SecondEvals), "case2-evals")
	})
}

// BenchmarkParallelCases compares the sequential case schedule (1 worker,
// incremental cone reevaluation) against the concurrent snapshot-per-case
// engine on an 8-case generated design.  On a multi-core host the worker
// pool amortises the full-relaxation cost across CPUs; on a single CPU the
// sequential schedule's smaller total work wins, which is why Workers == 1
// remains a supported configuration.
func BenchmarkParallelCases(b *testing.B) {
	d, _, err := gen.Generate(gen.Config{Chips: 510, Cases: 8})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var s verify.Stats
			for i := 0; i < b.N; i++ {
				res, err := verify.Run(d, verify.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				s = res.Stats
			}
			b.ReportMetric(float64(s.PrimEvals), "prim-evals")
			b.ReportMetric(float64(s.Workers), "workers")
		})
	}
}

// BenchmarkClaim_ExponentialSavings compares exhaustive min/max logic
// simulation against the verifier's single symbolic pass on n-input cones
// (§1.4.1, §2.1).  The simulator's cost doubles with each input; the
// verifier's stays linear in the gate count.
func BenchmarkClaim_ExponentialSavings(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("logicsim/n=%d", n), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				pts, err := experiments.RunExponential([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				cycles = pts[0].SimCycles
			}
			b.ReportMetric(float64(cycles), "vectors")
		})
	}
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("verifier/n=%d", n), func(b *testing.B) {
			d, _, _, _ := buildConeForBench(n)
			b.ResetTimer()
			var events int
			for i := 0; i < b.N; i++ {
				res, err := verify.Run(d, verify.Options{})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Stats.Events
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// buildConeForBench mirrors the experiment harness's cone construction.
func buildConeForBench(n int) (*Design, *logicsim.Circuit, []int, int) {
	b := NewBuilder(fmt.Sprintf("cone-%d", n))
	b.SetPeriod(200 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	ins := make([]NetID, n)
	for i := range ins {
		ins[i] = b.Net(fmt.Sprintf("IN%d .S5-204", i))
	}
	prev := ins[0]
	for i := 1; i < n; i++ {
		k := KAnd
		if i%2 == 0 {
			k = KOr
		}
		o := b.Net(fmt.Sprintf("N%d", i))
		b.Gate(k, fmt.Sprintf("G%d", i), tick.R(1, 2), []NetID{o}, Conns(prev), Conns(ins[i]))
		prev = o
	}
	return b.MustBuild(), nil, nil, 0
}

// BenchmarkClaim_PathSearch runs the Fig 2-6 comparison: the path-search
// baseline against the verifier with case analysis.
func BenchmarkClaim_PathSearch(b *testing.B) {
	var r *experiments.PathClaim
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunPathSearchClaim()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PathSearchMax.NS(), "pathsearch-ns")
	b.ReportMetric(r.TVCaseDelay.NS(), "verifier-case-ns")
}

// BenchmarkPathSearch_Scale runs the path-search baseline over a generated
// design, for the baseline-cost comparison.
func BenchmarkPathSearch_Scale(b *testing.B) {
	d, _, err := gen.Generate(gen.Config{Chips: 510})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var eps int
	for i := 0; i < b.N; i++ {
		a, err := pathsearch.Analyze(d)
		if err != nil {
			b.Fatal(err)
		}
		eps = len(a.Endpoints)
	}
	b.ReportMetric(float64(eps), "endpoints")
}

// --- micro-benchmarks of the core value algebra (design-choice ablations
// recorded in DESIGN.md: segment lists + out-of-band skew) ---

func BenchmarkValues_Combine(b *testing.B) {
	p := 50 * tick.NS
	w1 := values.FromSpans(p, values.VS, values.Span{Start: 10 * tick.NS, End: 20 * tick.NS, V: values.VC}).WithSkew(2 * tick.NS)
	w2 := values.FromSpans(p, values.VS, values.Span{Start: 15 * tick.NS, End: 30 * tick.NS, V: values.VC}).WithSkew(1 * tick.NS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = values.Combine(w1, w2, values.Or)
	}
}

func BenchmarkValues_IncorporateSkew(b *testing.B) {
	p := 50 * tick.NS
	w := values.Const(p, values.V0).Paint(10*tick.NS, 20*tick.NS, values.V1).
		Paint(30*tick.NS, 35*tick.NS, values.V1).WithSkew(3 * tick.NS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.IncorporateSkew()
	}
}

func BenchmarkValues_Delay(b *testing.B) {
	p := 50 * tick.NS
	w := values.Const(p, values.V0).Paint(10*tick.NS, 20*tick.NS, values.V1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Delay(tick.R(1, 3))
	}
}

func BenchmarkVerify_Fig15Hazard(b *testing.B) {
	src := `
design "FIG 1-5"
period 50ns
clockunit 1ns
defaultwire 0ns 0ns
skew precision 0 0
and "CLOCK GATE" delay=(0,0) ("CLOCK .P20-30", "ENABLE .S25-70") -> ("REG CLOCK")
minpulse "REG CK WIDTH" high=5.0 low=3.0 ("REG CLOCK")
`
	d, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var nv int
	for i := 0; i < b.N; i++ {
		res, err := Verify(d, Options{})
		if err != nil {
			b.Fatal(err)
		}
		nv = len(res.Violations)
	}
	b.ReportMetric(float64(nv), "violations")
}
