package netlist

import (
	"fmt"
	"math"
	"sort"

	"scaldtv/internal/tick"
)

// Parametric analytic delay functions: a design may declare named
// parameters (load, temperature, voltage, ...) and express primitive
// delays as affine functions over them.  The engine itself never
// evaluates these functions during relaxation — every Prim.Delay is the
// function evaluated at a concrete parameter point, so the seven-value
// relaxation stays exactly the paper's interval propagation — but the
// tables travel with the design so the path-search layer can build
// closed-form margin surfaces (internal/pathsearch.AnalyzeAnalytic) and
// the verifier can pin the design at any parameter point (PinParams)
// for differential cross-checks.

// Param is one named design parameter with its default value and the
// closed box [Lo, Hi] the corner surface ranges over.
type Param struct {
	Name    string
	Default float64
	Lo, Hi  float64
}

// Coeff is one affine term: PS picoseconds of delay per unit of the
// parameter at index Param in Design.Params.
type Coeff struct {
	Param int32
	PS    float64
}

// Affine is a closed-form delay bound: Base plus a weighted sum of
// parameter values, in picoseconds.
type Affine struct {
	Base   tick.Time
	Coeffs []Coeff
}

// Eval evaluates the affine form at the given parameter vector (indexed
// like Design.Params).  The float sum is rounded half away from zero to
// integer picoseconds in one deterministic step, so evaluating a term
// set symbolically (pathsearch.EvalTerms) and re-running the engine on a
// pinned design (PinParams) land on bit-identical times.
func (a Affine) Eval(vals []float64) tick.Time {
	if len(a.Coeffs) == 0 {
		return a.Base
	}
	var s float64
	for _, c := range a.Coeffs {
		s += c.PS * vals[c.Param]
	}
	return a.Base + tick.Time(math.Round(s))
}

// Constant reports whether the form has no parameter dependence.
func (a Affine) Constant() bool { return len(a.Coeffs) == 0 }

// DelayFn is one analytic delay function: min and max bounds, each an
// affine form over the design parameters.
type DelayFn struct {
	Min, Max Affine
}

// Eval evaluates both bounds at a parameter point.
func (f DelayFn) Eval(vals []float64) tick.Range {
	return tick.Range{Min: f.Min.Eval(vals), Max: f.Max.Eval(vals)}
}

// ParamDefaults returns the design's default parameter vector, indexed
// like Design.Params.
func (d *Design) ParamDefaults() []float64 {
	if len(d.Params) == 0 {
		return nil
	}
	vals := make([]float64, len(d.Params))
	for i, p := range d.Params {
		vals[i] = p.Default
	}
	return vals
}

// ParamValues resolves a name → value override map against the declared
// parameters, returning the full parameter vector (defaults where the
// map is silent).  Unknown names and values outside the declared [Lo,
// Hi] box are errors — the corner surface is only meaningful inside the
// box the functions were validated over.
func (d *Design) ParamValues(overrides map[string]float64) ([]float64, error) {
	vals := d.ParamDefaults()
	if len(overrides) == 0 {
		return vals, nil
	}
	index := make(map[string]int, len(d.Params))
	for i, p := range d.Params {
		index[p.Name] = i
	}
	// Deterministic error selection: report the lexically first bad name.
	names := make([]string, 0, len(overrides))
	for name := range overrides {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		i, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("netlist: design %q declares no parameter %q", d.Name, name)
		}
		v := overrides[name]
		p := d.Params[i]
		if math.IsNaN(v) || v < p.Lo || v > p.Hi {
			return nil, fmt.Errorf("netlist: parameter %s = %v outside its declared range [%v, %v]", name, v, p.Lo, p.Hi)
		}
		vals[i] = v
	}
	return vals, nil
}

// PinParams returns a design with every analytic delay function
// evaluated at the given parameter vector: a plain constant-delay design
// the engine (and the differential logicsim layer) can run without any
// knowledge of parameters.  The clone shares nets, cases and the name
// index with the original — only the primitive table is copied, since
// only Prim.Delay values change — and carries over the levelization
// cache (structure-derived) but NOT the compiled-engine cache, whose
// seed image and memo tables were built under the original delays.
//
// Pinning at the default vector is the identity on delays: elaboration
// already stores each function's default-point evaluation in Prim.Delay.
func (d *Design) PinParams(vals []float64) *Design {
	nd := &Design{
		Name:          d.Name,
		Period:        d.Period,
		ClockUnit:     d.ClockUnit,
		DefaultWire:   d.DefaultWire,
		PrecisionSkew: d.PrecisionSkew,
		ClockSkew:     d.ClockSkew,
		WiredOr:       d.WiredOr,
		Params:        d.Params,
		DelayFns:      d.DelayFns,
		Nets:          d.Nets,
		Prims:         append([]Prim(nil), d.Prims...),
		Cases:         d.Cases,
		byName:        d.byName,
	}
	for i := range nd.Prims {
		if fn := nd.Prims[i].Fn; fn > 0 {
			nd.Prims[i].Delay = d.DelayFns[fn-1].Eval(vals)
		}
	}
	if lv := d.level.Load(); lv != nil {
		nd.level.Store(lv)
	}
	return nd
}

// checkDelayFns validates the analytic tables: every coefficient names a
// declared parameter, every parameter box is a valid closed interval
// containing its default, and every function bound to a primitive yields
// a valid min ≤ max range at every vertex of the parameter box (affine
// bounds are extremal at vertices, so vertex validity implies validity
// over the whole box).  Functions over more than maxCheckParams distinct
// parameters are validated at the default point only.
func (d *Design) checkDelayFns() error {
	for _, p := range d.Params {
		if p.Name == "" {
			return fmt.Errorf("parameter with empty name")
		}
		if math.IsNaN(p.Lo) || math.IsNaN(p.Hi) || p.Lo > p.Hi {
			return fmt.Errorf("parameter %s has invalid range [%v, %v]", p.Name, p.Lo, p.Hi)
		}
		if p.Default < p.Lo || p.Default > p.Hi {
			return fmt.Errorf("parameter %s default %v outside its range [%v, %v]", p.Name, p.Default, p.Lo, p.Hi)
		}
	}
	for fi := range d.DelayFns {
		fn := &d.DelayFns[fi]
		for _, a := range [2]Affine{fn.Min, fn.Max} {
			for _, c := range a.Coeffs {
				if c.Param < 0 || int(c.Param) >= len(d.Params) {
					return fmt.Errorf("delay function %d references parameter %d out of range", fi, c.Param)
				}
				if math.IsNaN(c.PS) || math.IsInf(c.PS, 0) {
					return fmt.Errorf("delay function %d has non-finite coefficient", fi)
				}
			}
		}
		if err := d.checkFnBox(fn); err != nil {
			return fmt.Errorf("delay function %d: %v", fi, err)
		}
	}
	for pi := range d.Prims {
		if fn := d.Prims[pi].Fn; fn < 0 || int(fn) > len(d.DelayFns) {
			return fmt.Errorf("primitive %q references delay function %d out of range", d.Prims[pi].Name, fn)
		}
	}
	return nil
}

// maxCheckParams bounds the 2^k vertex enumeration of box validation.
const maxCheckParams = 12

// checkFnBox proves min ≤ max and min ≥ 0 over the whole parameter box
// by checking every vertex (affine forms are extremal at vertices).
func (d *Design) checkFnBox(fn *DelayFn) error {
	params := map[int32]bool{}
	for _, c := range fn.Min.Coeffs {
		params[c.Param] = true
	}
	for _, c := range fn.Max.Coeffs {
		params[c.Param] = true
	}
	idx := make([]int32, 0, len(params))
	for p := range params {
		idx = append(idx, p)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	vals := d.ParamDefaults()
	if len(idx) > maxCheckParams {
		r := fn.Eval(vals)
		if !r.Valid() {
			return fmt.Errorf("invalid range %v at the default point", r)
		}
		return nil
	}
	for bits := 0; bits < 1<<len(idx); bits++ {
		for k, p := range idx {
			if bits&(1<<k) != 0 {
				vals[p] = d.Params[p].Hi
			} else {
				vals[p] = d.Params[p].Lo
			}
		}
		r := fn.Eval(vals)
		if !r.Valid() {
			return fmt.Errorf("invalid range %v at a box corner", r)
		}
	}
	return nil
}
