package pathsearch

import (
	"fmt"
	"sort"
	"strings"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// Symbolic path DP over analytic delay functions: instead of a single
// min/max number per net, each net carries a set of path-class Terms —
// a constant plus "traverse delay function f, N times" counts — so the
// arrival time at a constraint site is a closed-form function of the
// design parameters: the max (late side) or min (early side) over the
// term set of Const + Σ N · round(affine(θ)).
//
// Exactness contract: a term's value at θ uses exactly the same per-prim
// rounding as Design.PinParams, so evaluating the term set at θ is
// bit-identical to re-running the interval DP on the pinned design —
// provided the set kept every non-dominated term (Exact).  Dominance is
// proven conservatively over the whole parameter box with a ±0.5·N
// rounding guard, so pruning never sacrifices exactness; only the term
// cap can, and that is reported via the Exact flags.

// FnCount says: this path class traverses delay function Fn (1-based
// into Design.DelayFns) N times.
type FnCount struct {
	Fn int32
	N  int32
}

// Term is one path class: a constant delay plus counted traversals of
// analytic delay functions.  Counts is sorted by Fn and never holds
// zero counts, so equal classes compare equal.
type Term struct {
	Const  tick.Time
	Counts []FnCount
}

// Value evaluates the term at a parameter point; the late side uses
// each function's Max bound, the early side its Min bound.  Rounding
// matches Design.PinParams: each of the N traversals contributes the
// same individually-rounded affine evaluation.
func (t Term) Value(fns []netlist.DelayFn, late bool, vals []float64) tick.Time {
	v := t.Const
	for _, c := range t.Counts {
		a := fns[c.Fn-1].Min
		if late {
			a = fns[c.Fn-1].Max
		}
		v += tick.Time(c.N) * a.Eval(vals)
	}
	return v
}

// weight is the total traversal count — the rounding-guard width.
func (t Term) weight() int32 {
	var n int32
	for _, c := range t.Counts {
		n += c.N
	}
	return n
}

// key is the canonical path-class signature.
func (t Term) key() string {
	var sb strings.Builder
	for _, c := range t.Counts {
		fmt.Fprintf(&sb, "%d:%d,", c.Fn, c.N)
	}
	return sb.String()
}

// EvalTerms returns the extremal term value at a parameter point: max
// over the set for the late side, min for the early side.  ok is false
// for an empty set (site unreached).
func EvalTerms(terms []Term, fns []netlist.DelayFn, late bool, vals []float64) (tick.Time, bool) {
	if len(terms) == 0 {
		return 0, false
	}
	best := terms[0].Value(fns, late, vals)
	for _, t := range terms[1:] {
		v := t.Value(fns, late, vals)
		if late && v > best || !late && v < best {
			best = v
		}
	}
	return best, true
}

// SiteTerms is the symbolic arrival function at one constraint-site end
// pin: the late (latest-arrival) and early (earliest-arrival) term sets
// over every start and every reconvergent path, with flags recording
// whether each set survived the term cap intact.
type SiteTerms struct {
	To                    string
	Late, Early           []Term
	LateExact, EarlyExact bool
}

// DefaultMaxTerms caps the per-site term set; sets that would exceed it
// are truncated and flagged inexact.
const DefaultMaxTerms = 32

// termSet is the per-net DP state for one side.
type termSet struct {
	terms   []Term
	reached bool
	exact   bool
}

// pruner proves term dominance over the design's parameter box.
type pruner struct {
	d *netlist.Design
}

// maxPruneParams bounds the vertex enumeration of a dominance proof.
const maxPruneParams = 12

// dominates reports whether a's value provably bounds b's everywhere in
// the parameter box — ≥ everywhere on the late side, ≤ on the early
// side — including the worst case of per-term rounding.
func (pr *pruner) dominates(a, b Term, late bool) bool {
	// Real-valued affine difference diff(θ) = La(θ) − Lb(θ).
	base := float64(a.Const - b.Const)
	coeffs := map[int32]float64{}
	add := func(t Term, sign float64, useMax bool) {
		for _, c := range t.Counts {
			af := pr.d.DelayFns[c.Fn-1].Min
			if useMax {
				af = pr.d.DelayFns[c.Fn-1].Max
			}
			base += sign * float64(c.N) * float64(af.Base)
			for _, co := range af.Coeffs {
				coeffs[co.Param] += sign * float64(c.N) * co.PS
			}
		}
	}
	add(a, 1, late)
	add(b, -1, late)
	// Rounding guard: each function traversal may round up to half a
	// picosecond either way.
	guard := 0.5 * float64(a.weight()+b.weight())
	params := make([]int32, 0, len(coeffs))
	for p, c := range coeffs {
		if c != 0 {
			params = append(params, p)
		}
	}
	if len(params) > maxPruneParams {
		return false
	}
	sort.Slice(params, func(i, j int) bool { return params[i] < params[j] })
	// The affine difference is extremal at box vertices.
	for bits := 0; bits < 1<<len(params); bits++ {
		v := base
		for k, p := range params {
			x := pr.d.Params[p].Lo
			if bits&(1<<k) != 0 {
				x = pr.d.Params[p].Hi
			}
			v += coeffs[p] * x
		}
		if late && v < guard || !late && v > -guard {
			return false
		}
	}
	return true
}

// mergeTerms unions two term sets for one side: duplicate path classes
// keep the extremal constant, provably dominated classes are dropped,
// and a set still over the cap is truncated (deterministically, best
// default-point values first) and flagged inexact.
func (pr *pruner) mergeTerms(dst termSet, src []Term, srcExact, late bool, maxTerms int, defVals []float64) termSet {
	out := termSet{reached: true, exact: dst.exact && srcExact}
	if !dst.reached {
		out.exact = srcExact
	}
	byKey := map[string]int{}
	var terms []Term
	addAll := func(ts []Term) {
		for _, t := range ts {
			k := t.key()
			if i, ok := byKey[k]; ok {
				if late && t.Const > terms[i].Const || !late && t.Const < terms[i].Const {
					terms[i].Const = t.Const
				}
				continue
			}
			byKey[k] = len(terms)
			terms = append(terms, t)
		}
	}
	addAll(dst.terms)
	addAll(src)
	if len(terms) > 1 {
		kept := make([]Term, 0, len(terms))
		for i := range terms {
			dominated := false
			for j := range terms {
				if i == j {
					continue
				}
				if pr.dominates(terms[j], terms[i], late) &&
					// Symmetric pairs (mutual dominance up to the guard
					// cannot happen, but identical reals can): keep the
					// earlier index.
					!(j > i && pr.dominates(terms[i], terms[j], late)) {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, terms[i])
			}
		}
		terms = kept
	}
	if len(terms) > maxTerms {
		fns := pr.d.DelayFns
		sort.SliceStable(terms, func(i, j int) bool {
			vi, vj := terms[i].Value(fns, late, defVals), terms[j].Value(fns, late, defVals)
			if vi != vj {
				if late {
					return vi > vj
				}
				return vi < vj
			}
			return terms[i].key() < terms[j].key()
		})
		terms = terms[:maxTerms]
		out.exact = false
	}
	out.terms = terms
	return out
}

// extendTerms advances a term set across one edge.
func extendTerms(ts []Term, e edge, late bool) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		nt := Term{Const: t.Const, Counts: t.Counts}
		if e.fn > 0 {
			if late {
				nt.Const += e.cmax
			} else {
				nt.Const += e.cmin
			}
			nt.Counts = bumpCount(t.Counts, e.fn)
		} else {
			if late {
				nt.Const += e.max
			} else {
				nt.Const += e.min
			}
		}
		out[i] = nt
	}
	return out
}

// bumpCount returns counts with fn incremented, preserving sort order
// and never aliasing the input slice.
func bumpCount(counts []FnCount, fn int32) []FnCount {
	out := make([]FnCount, 0, len(counts)+1)
	placed := false
	for _, c := range counts {
		switch {
		case c.Fn == fn:
			out = append(out, FnCount{Fn: fn, N: c.N + 1})
			placed = true
		case c.Fn > fn && !placed:
			out = append(out, FnCount{Fn: fn, N: 1}, c)
			placed = true
		default:
			out = append(out, c)
		}
	}
	if !placed {
		out = append(out, FnCount{Fn: fn, N: 1})
	}
	return out
}

// AnalyzeAnalytic runs the symbolic DP over the same combinational
// graph as Analyze, producing the late and early term sets for every
// constraint-site end pin (keyed by "prim:port" label), unioned over
// every start.  maxTerms ≤ 0 selects DefaultMaxTerms.  Combinational
// loops are reported as in Analyze; looped nets get no terms.
func AnalyzeAnalytic(d *netlist.Design, maxTerms int) (map[string]*SiteTerms, []string) {
	if maxTerms <= 0 {
		maxTerms = DefaultMaxTerms
	}
	g := buildGraph(d)
	n := len(d.Nets)
	pr := &pruner{d: d}
	defVals := d.ParamDefaults()
	out := make(map[string]*SiteTerms)
	late := make([]termSet, n)
	early := make([]termSet, n)
	for _, s := range g.starts {
		for i := 0; i < n; i++ {
			late[i], early[i] = termSet{}, termSet{}
		}
		late[s] = termSet{terms: []Term{{}}, reached: true, exact: true}
		early[s] = termSet{terms: []Term{{}}, reached: true, exact: true}
		for _, u := range g.order {
			if !late[u].reached {
				continue
			}
			for _, e := range g.adj[u] {
				late[e.to] = pr.mergeTerms(late[e.to], extendTerms(late[u].terms, e, true), late[u].exact, true, maxTerms, defVals)
				early[e.to] = pr.mergeTerms(early[e.to], extendTerms(early[u].terms, e, false), early[u].exact, false, maxTerms, defVals)
			}
		}
		for net, pins := range g.ends {
			if !late[net].reached {
				continue
			}
			for _, pin := range pins {
				st := out[pin.label]
				if st == nil {
					st = &SiteTerms{To: pin.label, LateExact: true, EarlyExact: true}
					out[pin.label] = st
				}
				lt := termSet{terms: st.Late, reached: st.Late != nil, exact: st.LateExact}
				lt = pr.mergeTerms(lt, extendTerms(late[net].terms, edge{max: pin.wire.Max, min: pin.wire.Min}, true), late[net].exact, true, maxTerms, defVals)
				st.Late, st.LateExact = lt.terms, lt.exact
				et := termSet{terms: st.Early, reached: st.Early != nil, exact: st.EarlyExact}
				et = pr.mergeTerms(et, extendTerms(early[net].terms, edge{max: pin.wire.Max, min: pin.wire.Min}, false), early[net].exact, false, maxTerms, defVals)
				st.Early, st.EarlyExact = et.terms, et.exact
			}
		}
	}
	return out, g.loops
}

// SiteTermsByPrim regroups AnalyzeAnalytic output by checker/storage
// instance name (the part of the end label before the colon), keeping
// each instance's pins sorted by label so iteration is deterministic.
func SiteTermsByPrim(sites map[string]*SiteTerms) map[string][]*SiteTerms {
	byPrim := make(map[string][]*SiteTerms)
	for label, st := range sites {
		prim := label
		if i := lastColon(label); i >= 0 {
			prim = label[:i]
		}
		byPrim[prim] = append(byPrim[prim], st)
	}
	for _, sts := range byPrim {
		sort.Slice(sts, func(i, j int) bool { return sts[i].To < sts[j].To })
	}
	return byPrim
}

// Parametric reports whether any primitive of the design carries an
// analytic delay function.
func Parametric(d *netlist.Design) bool {
	for i := range d.Prims {
		if d.Prims[i].Fn > 0 {
			return true
		}
	}
	return false
}
