package scaldtv

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaldtv/internal/store"
)

// TestStoreParityExamples is the acceptance contract of the persistent
// verification store: for every example design and every execution
// configuration, the report served from the store (exact hit), the
// report re-rendered from a restored session, and the report of a
// warm-started re-verification are all byte-identical to a cold run.
func TestStoreParityExamples(t *testing.T) {
	designs, err := filepath.Glob(filepath.Join("examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	ctx := context.Background()
	for _, path := range designs {
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			text := string(src) + "\n" + Library
			res, err := VerifySource(text, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := JSONReport(res)
			if err != nil {
				t.Fatal(err)
			}

			st, err := store.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			seed, err := Compile(text)
			if err != nil {
				t.Fatal(err)
			}
			first, err := store.Verify(ctx, st, seed, text, Options{Workers: 1}, true)
			if err != nil {
				t.Fatal(err)
			}
			if first.Provenance != store.Cold {
				t.Fatalf("seeding run provenance %q, want cold", first.Provenance)
			}
			if !bytes.Equal(first.Report, baseline) {
				t.Fatal("store-mediated cold report differs from the plain engine report")
			}

			for i, opts := range []Options{
				{Workers: 1},
				{Workers: 2},
				{Workers: 8},
				{Workers: 1, IntraWorkers: 2},
				{Workers: 8, IntraWorkers: 2},
			} {
				// Exact hit with a restored session: the store key ignores
				// execution options, so every worker configuration hits the
				// seeded entry; the re-rendered report must not drift.
				d, err := Compile(text)
				if err != nil {
					t.Fatal(err)
				}
				oc, err := store.Verify(ctx, st, d, text, opts, true)
				if err != nil {
					t.Fatal(err)
				}
				if oc.Provenance != store.Cached || oc.V == nil {
					t.Fatalf("opts %+v: provenance %q (V=%v), want a cached restore", opts, oc.Provenance, oc.V != nil)
				}
				if !bytes.Equal(oc.Report, baseline) {
					t.Errorf("opts %+v: cached report differs from cold", opts)
				}
				rendered, err := JSONReport(oc.Res)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rendered, baseline) {
					t.Errorf("opts %+v: restored session re-renders a different report\n--- got ---\n%s\n--- want ---\n%s",
						opts, rendered, baseline)
				}

				// Warm start: a distinct pass cap gives a distinct
				// verification key over the same structure, forcing the
				// nearest-snapshot path.  The design is unchanged and
				// converged, so the report must still match cold bytes.
				warmOpts := opts
				warmOpts.MaxPasses = 100000 + i
				dw, err := Compile(text)
				if err != nil {
					t.Fatal(err)
				}
				wc, err := store.Verify(ctx, st, dw, text, warmOpts, true)
				if err != nil {
					t.Fatal(err)
				}
				if wc.Provenance != store.Warm {
					t.Fatalf("opts %+v: provenance %q, want warm", warmOpts, wc.Provenance)
				}
				if !bytes.Equal(wc.Report, baseline) {
					t.Errorf("opts %+v: warm report differs from cold", warmOpts)
				}
			}

			// Stateless exact hit: stored bytes, no session.
			d, err := Compile(text)
			if err != nil {
				t.Fatal(err)
			}
			oc, err := store.Verify(ctx, st, d, text, Options{Workers: 1}, false)
			if err != nil {
				t.Fatal(err)
			}
			if oc.Provenance != store.Cached || oc.V != nil {
				t.Fatalf("stateless hit provenance %q (V=%v)", oc.Provenance, oc.V != nil)
			}
			if !bytes.Equal(oc.Report, baseline) {
				t.Error("stateless cached report differs from cold")
			}
		})
	}
}
