package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"scaldtv"
)

// editableSource is a small multi-primitive design whose buffer delay can
// be edited without structural change, so a session PUT stays on the
// incremental path with a proper sub-design dirty cone.
const editableSource = `
design SESS
period 50ns
clockunit 6.25ns
reg R delay=(1.5,4.5) ("CK .P0-4", "D .S6-12") -> (Q)
buf B1 delay=(1,%g) (Q) -> (QB)
buf B2 delay=(1,2) (QB) -> (QC)
setuphold CHK setup=2.5 hold=1.5 ("D .S6-12", "CK .P0-4")
`

func sessSource(maxDelay float64) string { return fmt.Sprintf(editableSource, maxDelay) }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func do(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// cliJSON computes the exact bytes `scaldtv -json` emits for src with the
// library appended: the JSON report plus one trailing newline.
func cliJSON(t *testing.T, src string, opts scaldtv.Options) []byte {
	t.Helper()
	res, err := scaldtv.VerifySource(src+"\n"+scaldtv.Library, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := scaldtv.JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestStatelessVerifyParity is the acceptance contract of POST
// /v1/verify: for every example design the response body is
// byte-identical to the CLI's -json output, for several worker settings.
func TestStatelessVerifyParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	designs, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.scald"))
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("no .scald designs under examples/")
	}
	for _, path := range designs {
		name := strings.TrimSuffix(filepath.Base(path), ".scald")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want := cliJSON(t, string(src), scaldtv.Options{})
			for _, q := range []string{"lib=1", "lib=1&j=2", "lib=1&j=2&intra=2", "lib=1&cache=false"} {
				resp, got := post(t, ts.URL+"/v1/verify?"+q, string(src))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("?%s: status %d: %s", q, resp.StatusCode, got)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("?%s: response differs from scaldtv -json\n--- got ---\n%s\n--- want ---\n%s", q, got, want)
				}
			}
		})
	}
}

// TestVerifyJSONBody: the JSON request variant carries source and options
// in the body and produces the same report.
func TestVerifyJSONBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := sessSource(2)
	body, _ := json.Marshal(verifyRequest{Source: src, Lib: true})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if want := cliJSON(t, src, scaldtv.Options{}); !bytes.Equal(got, want) {
		t.Errorf("JSON-body response differs from raw-body response\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSessionIncremental is the acceptance contract of the session API:
// after a single-primitive delay edit the PUT response reports
// incremental=true with a dirty cone strictly smaller than the design,
// and the retained report equals a from-scratch verify of the edited
// source byte for byte.
func TestSessionIncremental(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts.URL+"/v1/sessions", sessSource(2))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var created sessionEnvelope
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("create response: %v\n%s", err, body)
	}
	if created.Session == "" || created.Incremental {
		t.Fatalf("create envelope: session=%q incremental=%v", created.Session, created.Incremental)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sessions/"+created.Session {
		t.Errorf("Location = %q", loc)
	}

	resp, body = do(t, http.MethodPut, ts.URL+"/v1/sessions/"+created.Session+"/design", sessSource(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, body)
	}
	var updated sessionEnvelope
	if err := json.Unmarshal(body, &updated); err != nil {
		t.Fatalf("update response: %v\n%s", err, body)
	}
	if !updated.Incremental {
		t.Error("one-delay edit did not take the incremental path")
	}
	if updated.DirtyPrims <= 0 || updated.DirtyPrims >= updated.Primitives {
		t.Errorf("DirtyPrims = %d of %d, want a proper sub-design cone", updated.DirtyPrims, updated.Primitives)
	}

	// The retained report answers byte-identically to a stateless verify
	// of the edited design.
	resp, got := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.Session+"/report", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d: %s", resp.StatusCode, got)
	}
	res, err := scaldtv.VerifySource(sessSource(3), scaldtv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := scaldtv.JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("incremental session report differs from scratch verify\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	if resp, body := do(t, http.MethodDelete, ts.URL+"/v1/sessions/"+created.Session, ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.Session+"/report", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("report after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionCancelSelfHeals: cancelling a session update mid-verify
// answers 408 and drops the retained state inside the verifier, but the
// session survives — the next identical PUT runs from scratch and its
// report is byte-identical to a stateless verify (the abort-don't-corrupt
// contract over HTTP).
func TestSessionCancelSelfHeals(t *testing.T) {
	started := make(chan struct{}, 4)
	var gate sync.Map // request marker → wait for cancellation
	cfg := Config{onVerifyStart: func(ctx context.Context) {
		started <- struct{}{}
		if _, ok := gate.Load("block"); !ok {
			return
		}
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Second):
		}
	}}
	_, ts := newTestServer(t, cfg)

	resp, body := post(t, ts.URL+"/v1/sessions", sessSource(2))
	<-started
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var created sessionEnvelope
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	// A PUT whose client disconnects mid-verify: the hook holds the run
	// until the request context is canceled.
	gate.Store("block", true)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		ts.URL+"/v1/sessions/"+created.Session+"/design", strings.NewReader(sessSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-started // the update reached its pool slot
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled PUT returned a response")
	}
	gate.Delete("block")

	// The session is intact: the same edit re-runs from scratch…
	resp, body = do(t, http.MethodPut, ts.URL+"/v1/sessions/"+created.Session+"/design", sessSource(3))
	<-started
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT after cancellation: status %d: %s", resp.StatusCode, body)
	}
	var healed sessionEnvelope
	if err := json.Unmarshal(body, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Incremental {
		t.Error("PUT after cancellation claims to be incremental (retained state should be gone)")
	}
	// …and lands on the exact from-scratch report.
	res, err := scaldtv.VerifySource(sessSource(3), scaldtv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := scaldtv.JSONReport(res)
	if err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	if err := json.Compact(&report, healed.Report); err != nil {
		t.Fatal(err)
	}
	var wantCompact bytes.Buffer
	if err := json.Compact(&wantCompact, want); err != nil {
		t.Fatal(err)
	}
	if report.String() != wantCompact.String() {
		t.Errorf("report after self-heal differs from scratch verify\n--- got ---\n%s\n--- want ---\n%s",
			report.String(), wantCompact.String())
	}
}

// TestOverload429: beyond Pool+Queue requests in flight the server
// answers 429 with Retry-After immediately instead of blocking, and the
// queued work still completes once the pool frees up.
func TestOverload429(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		Pool:  1,
		Queue: 1,
		onVerifyStart: func(ctx context.Context) {
			started <- struct{}{}
			<-block
		},
	})

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/verify", "text/plain", strings.NewReader(sessSource(2)))
			if err != nil {
				results <- result{status: -1}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, body}
		}()
	}
	<-started // one request holds the single pool slot…
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueDepth() < 2 { // …and the other sits in the queue
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts.URL+"/v1/verify", sessSource(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("429 body: %v\n%s", err, body)
	}

	close(block)
	<-started // the queued request reaches the pool
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusOK {
			t.Errorf("admitted request: status %d: %s", r.status, r.body)
		}
	}
	if got := s.QueueDepth(); got != 0 {
		t.Errorf("QueueDepth after drain = %d, want 0", got)
	}
}

// TestClientDisconnectCancels: a client that goes away cancels the
// verification cooperatively and frees the pool slot for the next
// request.
func TestClientDisconnectCancels(t *testing.T) {
	started := make(chan struct{}, 2)
	canceled := make(chan bool, 1)
	first := true
	var mu sync.Mutex
	_, ts := newTestServer(t, Config{
		Pool: 1,
		onVerifyStart: func(ctx context.Context) {
			started <- struct{}{}
			mu.Lock()
			f := first
			first = false
			mu.Unlock()
			if !f {
				return
			}
			select {
			case <-ctx.Done():
				canceled <- true
			case <-time.After(10 * time.Second):
				canceled <- false
			}
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/verify", strings.NewReader(sessSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-started
	cancel()
	if !<-canceled {
		t.Fatal("server never observed the client disconnect")
	}
	<-done

	// The slot was released: a fresh request completes normally.
	resp, body := post(t, ts.URL+"/v1/verify?lib=1", sessSource(2))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("request after disconnect: status %d: %s", resp.StatusCode, body)
	}
}

// TestDrain: while draining, in-flight verifications complete with 200
// but new work and /healthz answer 503.
func TestDrain(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{
		Pool: 1,
		onVerifyStart: func(ctx context.Context) {
			started <- struct{}{}
			<-block
		},
	})

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/verify", "text/plain", strings.NewReader(sessSource(2)))
		if err != nil {
			inflight <- result{status: -1}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{resp.StatusCode, body}
	}()
	<-started
	s.SetDraining(true)

	resp, body := post(t, ts.URL+"/v1/verify", sessSource(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("verify while draining: status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Errorf("healthz while draining: status %d body %s", resp.StatusCode, body)
	}

	close(block)
	if r := <-inflight; r.status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d: %s", r.status, r.body)
	}
}

// TestSessionLRUEviction: beyond MaxSessions the least recently used
// session is evicted.
func TestSessionLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})
	ids := make([]string, 3)
	for i := range ids {
		resp, body := post(t, ts.URL+"/v1/sessions", sessSource(2))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d: %s", i, resp.StatusCode, body)
		}
		var env sessionEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		ids[i] = env.Session
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+ids[0]+"/report", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest session survived LRU eviction: status %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+id+"/report", ""); resp.StatusCode != http.StatusOK {
			t.Errorf("session %s evicted too early: status %d", id, resp.StatusCode)
		}
	}
}

// TestSessionTTL: sessions idle past the TTL are evicted on the next
// access, under an injected clock.
func TestSessionTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute, now: clock})

	resp, body := post(t, ts.URL+"/v1/sessions", sessSource(2))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var env sessionEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}

	advance(30 * time.Second) // a touch inside the TTL keeps it alive
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+env.Session+"/report", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("session expired before its TTL: status %d", resp.StatusCode)
	}
	advance(59 * time.Second)
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+env.Session+"/report", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("touch did not refresh the TTL: status %d", resp.StatusCode)
	}
	advance(61 * time.Second)
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+env.Session+"/report", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("idle session survived its TTL: status %d", resp.StatusCode)
	}
	if n := s.sessions.len(); n != 0 {
		t.Errorf("session table length = %d after TTL eviction, want 0", n)
	}
}

// TestErrorMapping: structured error kinds map onto the documented HTTP
// statuses with a JSON body carrying kind and position.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 256})
	cases := []struct {
		name   string
		method string
		url    string
		body   string
		status int
		kind   string
	}{
		{"parse", http.MethodPost, "/v1/verify", "design X\nperiod 50ns\nand (A<1:) -> (Y)\n", http.StatusBadRequest, "parse"},
		{"elaborate", http.MethodPost, "/v1/verify", "design X\nand (A) -> (Y)\n", http.StatusUnprocessableEntity, "elaborate"},
		{"empty-source", http.MethodPost, "/v1/verify", "", http.StatusBadRequest, "parse"},
		{"bad-query", http.MethodPost, "/v1/verify?j=banana", "design X\nperiod 50ns\n", http.StatusBadRequest, "parse"},
		{"body-too-large", http.MethodPost, "/v1/verify", strings.Repeat("x", 512), http.StatusServiceUnavailable, "limit"},
		{"no-session", http.MethodPut, "/v1/sessions/deadbeef/design", "design X\nperiod 50ns\n", http.StatusNotFound, "unknown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := do(t, tc.method, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb errBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body: %v\n%s", err, body)
			}
			if eb.Error.Kind != tc.kind {
				t.Errorf("kind %q, want %q (message %q)", eb.Error.Kind, tc.kind, eb.Error.Message)
			}
			if tc.name == "parse" && eb.Error.Line != 3 {
				t.Errorf("parse error Line = %d, want 3", eb.Error.Line)
			}
		})
	}
}

// TestReportFormats: the text renderings of a retained result.
func TestReportFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/sessions", sessSource(2))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var env sessionEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/sessions/" + env.Session + "/report"
	for format, want := range map[string]string{
		"errors":  "MINIMUM PULSE WIDTH", // error-listing header vocabulary
		"summary": "primitive",
		"xref":    "NO ASSERTION",
	} {
		resp, body := do(t, http.MethodGet, base+"?format="+format, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("format %s: status %d: %s", format, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(strings.ToUpper(string(body)), strings.ToUpper(want)) {
			t.Errorf("format %s output missing %q:\n%s", format, want, body)
		}
	}
	if resp, _ := do(t, http.MethodGet, base+"?format=yaml", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsAndHealthz: the counters move and the exposition parses.
func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := do(t, http.MethodGet, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK ||
		!bytes.Contains(body, []byte(`"status":"ok"`)) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}
	if resp, body := post(t, ts.URL+"/v1/verify", sessSource(2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d: %s", resp.StatusCode, body)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"scaldtvd_verifies_total 1",
		"scaldtvd_rejected_total 0",
		"scaldtvd_queue_depth 0",
		"scaldtvd_sessions 0",
		"scaldtvd_cache_hit_rate",
		`scaldtvd_verify_wall_seconds{quantile="0.5"}`,
		`scaldtvd_verify_wall_seconds{quantile="0.99"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// BenchmarkServerStatelessVerify measures the full request path —
// decode, admit, compile, verify, render — for the quickstart design.
func BenchmarkServerStatelessVerify(b *testing.B) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "quickstart", "quickstart.scald"))
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{})
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/verify?lib=1", bytes.NewReader(src))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
