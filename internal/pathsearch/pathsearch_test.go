package pathsearch

import (
	"strings"
	"testing"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

func ns(f float64) tick.Time { return tick.FromNS(f) }

// buildFig26 is the case-analysis circuit of Fig 2-6: two multiplexers
// sharing one control such that the 10 ns extra delay is taken at most
// once.  A path search cannot know that, and reports the impossible 40 ns
// path.
func buildFig26(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("fig2-6")
	b.SetPeriod(100 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	in := b.Net("INPUT .S5-104")
	ctrl := b.Net("CONTROL SIGNAL .S0-100")
	d1, m1, d2 := b.Net("D1"), b.Net("M1"), b.Net("D2")
	out := b.Net("OUTPUT")
	q := b.Net("Q")
	b.Buf("DELAY A", tick.R(10, 10), []netlist.NetID{d1}, netlist.Conns(in))
	b.Mux(netlist.KMux2, "MUX 1", tick.R(10, 10), tick.Range{}, []netlist.NetID{m1},
		netlist.Conns(ctrl), netlist.Conns(in), netlist.Conns(d1))
	b.Buf("DELAY B", tick.R(10, 10), []netlist.NetID{d2}, netlist.Conns(m1))
	b.Mux(netlist.KMux2, "MUX 2", tick.R(10, 10), tick.Range{}, []netlist.NetID{out},
		netlist.Conns(ctrl), netlist.Conns(d2), netlist.Conns(m1))
	b.Register("OUT REG", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: b.Net("CK .P20-30")}, netlist.Conns(out))
	return b.MustBuild()
}

func TestFig26SpuriousPath(t *testing.T) {
	a, err := Analyze(buildFig26(t))
	if err != nil {
		t.Fatal(err)
	}
	var inputPath *Endpoint
	for i := range a.Endpoints {
		e := &a.Endpoints[i]
		if e.From == "INPUT .S5-104" && strings.HasPrefix(e.To, "OUT REG") {
			if inputPath == nil || e.Max > inputPath.Max {
				inputPath = e
			}
		}
	}
	if inputPath == nil {
		t.Fatalf("INPUT → OUT REG path missing: %+v", a.Endpoints)
	}
	// The search reports the never-sensitisable 40 ns path (§4.1); the
	// Timing Verifier's case analysis shows the true 30 ns.
	if inputPath.Max != ns(40) {
		t.Errorf("path-search max = %v, want the spurious 40 ns", inputPath.Max)
	}
	if inputPath.Min != ns(20) {
		t.Errorf("path-search min = %v, want 20 ns", inputPath.Min)
	}
	// With a 35 ns budget the baseline cries wolf.
	if errs := a.Errors(ns(35)); len(errs) == 0 {
		t.Error("path search should report the spurious error")
	}
	if errs := a.Errors(ns(45)); len(errs) != 0 {
		t.Errorf("no errors expected with a 45 ns budget: %v", errs)
	}
}

func TestRegisterBoundaries(t *testing.T) {
	// Two registers with a gate between them: paths break at the storage
	// elements (RAS-style automatic endpoints).
	b := netlist.NewBuilder("regs")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.R(0, 2))
	ck := b.Net("CK .P0-4")
	d := b.Net("D .S0-4")
	q1, x, q2 := b.Net("Q1"), b.Net("X"), b.Net("Q2")
	b.Register("R1", tick.R(1, 2), []netlist.NetID{q1}, netlist.Conn{Net: ck}, netlist.Conns(d))
	b.Gate(netlist.KOr, "G", tick.R(1.0, 2.9), []netlist.NetID{x}, netlist.Conns(q1), netlist.Conns(q1))
	b.Register("R2", tick.R(1, 2), []netlist.NetID{q2}, netlist.Conn{Net: ck}, netlist.Conns(x))
	a, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	var found *Endpoint
	for i := range a.Endpoints {
		e := &a.Endpoints[i]
		if e.From == "Q1" && e.To == "R2:D" {
			found = e
		}
	}
	if found == nil {
		t.Fatalf("Q1 → R2:D missing: %+v", a.Endpoints)
	}
	// Wire 0/2 into the gate + gate 1.0/2.9 + wire 0/2 into the register.
	if found.Min != ns(1.0) || found.Max != ns(6.9) {
		t.Errorf("path = %v/%v, want 1.0/6.9", found.Min, found.Max)
	}
	// No path may cross a register: Q1 must not reach R2 through R1's
	// clock side or with accumulated double-register delay.
	for _, e := range a.Endpoints {
		if e.From == "D .S0-4" && e.To == "R2:D" {
			t.Errorf("path crossed a register: %+v", e)
		}
	}
}

func TestCombLoopDetected(t *testing.T) {
	b := netlist.NewBuilder("loop")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	x, y := b.Net("X"), b.Net("Y")
	a := b.Net("A .S0-25")
	b.Gate(netlist.KOr, "G1", tick.R(1, 1), []netlist.NetID{x}, netlist.Conns(y), netlist.Conns(a))
	b.Gate(netlist.KOr, "G2", tick.R(1, 1), []netlist.NetID{y}, netlist.Conns(x), netlist.Conns(a))
	an, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if len(an.CombLoops) != 2 {
		t.Errorf("loop nets = %v, want X and Y", an.CombLoops)
	}
}

func TestCheckerEndpoints(t *testing.T) {
	b := netlist.NewBuilder("chk")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	d := b.Net("D .S0-4")
	x := b.Net("X")
	ck := b.Net("CK .P0-4")
	b.Buf("B", tick.R(3, 5), []netlist.NetID{x}, netlist.Conns(d))
	b.SetupHold("CHK", ns(2), ns(1), netlist.Conns(x), netlist.Conn{Net: ck})
	a, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range a.Endpoints {
		if e.From == "D .S0-4" && e.To == "CHK:I" && e.Min == ns(3) && e.Max == ns(5) {
			found = true
		}
	}
	if !found {
		t.Errorf("checker endpoint missing: %+v", a.Endpoints)
	}
}

func TestDirectiveZeroing(t *testing.T) {
	// An &H-marked clock path through a gate contributes no delay, as the
	// de-skew semantics of §2.6 dictate.
	b := netlist.NewBuilder("dir")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.R(0, 2))
	ck := b.Net("CK .P2-3 L")
	en := b.Net("EN .S0-6")
	we := b.Net("WE")
	q := b.Net("Q")
	b.Gate(netlist.KAnd, "WE GATE", tick.R(1.0, 2.9), []netlist.NetID{we},
		b.Directive("H", netlist.Invert(netlist.Conns(ck))), netlist.Conns(en))
	b.Register("R", tick.R(1, 2), []netlist.NetID{q}, netlist.Conn{Net: we}, netlist.Conns(b.Net("D .S0-6")))
	a, err := Analyze(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range a.Endpoints {
		if e.From == "CK .P2-3 L" && e.To == "R:CK" {
			// Gate and gate-input wire zeroed by &H; only the physical
			// interconnection into the register pin remains.
			if e.Min != 0 || e.Max != ns(2) {
				t.Errorf("H-directive path = %v/%v, want 0/2.0", e.Min, e.Max)
			}
			return
		}
	}
	t.Errorf("clock path missing: %+v", a.Endpoints)
}

func TestString(t *testing.T) {
	a, err := Analyze(buildFig26(t))
	if err != nil {
		t.Fatal(err)
	}
	s := a.String()
	if !strings.Contains(s, "WORST-CASE PATHS") || !strings.Contains(s, "OUT REG") {
		t.Errorf("rendering wrong:\n%s", s)
	}
}
