package netlist

import (
	"sort"

	"scaldtv/internal/assertion"
)

// Levelization condenses the primitive graph into strongly connected
// components (Tarjan) and assigns every combinational component a
// topological level, the structure the intra-case wavefront scheduler
// relaxes over: components on one level share no dependency and may be
// evaluated concurrently, feedback components converge with a scoped
// worklist, and sequential components — those containing clocked storage —
// commit at sweep barriers so a concurrently running reader can never
// observe a half-written waveform.
//
// Edge rules.  A dependency edge u → q exists when u drives a net that q
// reads, except:
//
//   - checker primitives have no outputs and propagate nothing, so they
//     appear in no component (Comp[q] == -1);
//   - clock-pinned nets (a .C/.P clock assertion on a driven net, §2.9)
//     never propagate stores — the assertion rules and the computed value
//     goes to the cross-check side table — so edges through them are
//     dropped entirely;
//   - edges out of storage elements are *sequential*: they are cut before
//     the condensation (breaking the pipeline ring that would otherwise
//     collapse a whole design into one giant component) and honoured
//     between sweeps instead of within one.
//
// Wired-OR co-drivers of one net are forced into a single component (a
// cycle of artificial edges) because each driver's evaluation re-folds the
// group's outputs: keeping them in one component serialises the folds.
type Levelization struct {
	// Comp maps each PrimID to its component index, -1 for checkers.
	Comp []int32
	// Comps holds the components.  Indices are deterministic: they are
	// assigned in Tarjan completion order, which depends only on the
	// design's declaration order.
	Comps []SCComp
	// Levels lists the combinational component ids of each topological
	// level, ascending within a level.  A dependency edge between
	// combinational components always goes to a strictly higher level.
	Levels [][]int32
	// Seq lists the sequential component ids, ascending.
	Seq []int32
	// MaxLevel is len(Levels) - 1, or -1 with no combinational components.
	MaxLevel int
	// Feedback counts components needing local fixed-point iteration
	// (more than one member, or a self-loop).
	Feedback int
}

// SCComp is one strongly connected component of the cut primitive graph.
type SCComp struct {
	Members  []PrimID // ascending
	Level    int32    // topological level; -1 for sequential components
	Seq      bool     // contains a storage element: runs in the serial phase
	Feedback bool     // needs a scoped worklist to converge
}

// clockPinned reports whether the net is pinned to a clock assertion: the
// verifier never propagates a computed value through it (§2.9), so it
// carries no scheduling dependency.
func (d *Design) clockPinned(n NetID) bool {
	a := d.Nets[n].Assert
	return a != nil && (a.Kind == assertion.Clock || a.Kind == assertion.PrecisionClock)
}

// Levelization returns the design's cached levelization, computing it on
// first use.  The fanout index must be current; RebuildFanout invalidates
// the cache.  The returned structure is immutable and safe to share.
func (d *Design) Levelization() *Levelization {
	if l := d.level.Load(); l != nil {
		return l
	}
	l := computeLevelization(d)
	d.level.Store(l)
	return l
}

func computeLevelization(d *Design) *Levelization {
	n := len(d.Prims)
	adj := make([][]int32, n)

	// Dependency edges through driven nets, minus the cut classes.
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if p.Kind.IsChecker() || p.Kind.IsStorage() {
			continue
		}
		for _, port := range p.Out {
			for _, net := range port.Bits {
				if d.clockPinned(net) {
					continue
				}
				for _, q := range d.Nets[net].Fanout {
					if d.Prims[q].Kind.IsChecker() {
						continue
					}
					adj[pi] = append(adj[pi], int32(q))
				}
			}
		}
	}
	// Wired-OR groups: a cycle of artificial edges keeps co-drivers in one
	// component.
	if d.WiredOr {
		counts := make(map[NetID]int)
		for pi := range d.Prims {
			for _, port := range d.Prims[pi].Out {
				for _, net := range port.Bits {
					counts[net]++
				}
			}
		}
		for net, c := range counts {
			if c <= 1 {
				continue
			}
			drivers := d.Drivers(net)
			for i, u := range drivers {
				v := drivers[(i+1)%len(drivers)]
				if u != v {
					adj[u] = append(adj[u], int32(v))
				}
			}
		}
	}

	l := &Levelization{Comp: make([]int32, n), MaxLevel: -1}
	for i := range l.Comp {
		l.Comp[i] = -1
	}

	// Iterative Tarjan.  Components complete in reverse topological order,
	// so iterating them backwards afterwards is a topological sweep.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		next  int32
		stack []int32 // Tarjan's component stack
	)
	type frame struct {
		v  int32
		ei int // next adjacency index to explore
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited || d.Prims[root].Kind.IsChecker() {
			continue
		}
		dfs = append(dfs[:0], frame{v: int32(root)})
		index[root], low[root] = next, next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				switch {
				case index[w] == unvisited:
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				case onStack[w]:
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				if p := dfs[len(dfs)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// v roots a component: pop it.
			ci := int32(len(l.Comps))
			var members []PrimID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				l.Comp[w] = ci
				members = append(members, PrimID(w))
				if w == v {
					break
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			l.Comps = append(l.Comps, SCComp{Members: members})
		}
	}

	// Classify components and detect self-loops.
	for ci := range l.Comps {
		c := &l.Comps[ci]
		c.Feedback = len(c.Members) > 1
		for _, m := range c.Members {
			if d.Prims[m].Kind.IsStorage() {
				c.Seq = true
			}
			if !c.Feedback {
				for _, w := range adj[m] {
					if PrimID(w) == m {
						c.Feedback = true
						break
					}
				}
			}
		}
		if c.Feedback {
			l.Feedback++
		}
	}

	// Topological levels over the combinational condensation.  Tarjan
	// finished successor components first, so walking Comps backwards
	// visits every component before any component it points to; edges out
	// of sequential components are cut and do not raise levels.
	for ci := len(l.Comps) - 1; ci >= 0; ci-- {
		c := &l.Comps[ci]
		if c.Seq {
			c.Level = -1
			continue
		}
		for _, m := range c.Members {
			for _, w := range adj[m] {
				tc := l.Comp[w]
				if tc == int32(ci) || l.Comps[tc].Seq {
					continue
				}
				if nl := c.Level + 1; nl > l.Comps[tc].Level {
					l.Comps[tc].Level = nl
				}
			}
		}
	}
	for ci := range l.Comps {
		c := &l.Comps[ci]
		if c.Seq {
			l.Seq = append(l.Seq, int32(ci))
			continue
		}
		for int(c.Level) >= len(l.Levels) {
			l.Levels = append(l.Levels, nil)
		}
		l.Levels[c.Level] = append(l.Levels[c.Level], int32(ci))
	}
	l.MaxLevel = len(l.Levels) - 1
	for _, lv := range l.Levels {
		sort.Slice(lv, func(i, j int) bool { return lv[i] < lv[j] })
	}
	sort.Slice(l.Seq, func(i, j int) bool { return l.Seq[i] < l.Seq[j] })
	return l
}
