// Quickstart: build a small synchronous circuit programmatically, verify
// its timing constraints, and print the paper-style listings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scaldtv"
)

func main() {
	// A 50 ns machine: an 8-bit register captures a data bus on the cycle
	// clock; the bus is asserted stable from 37.5 ns (clock unit 6) to
	// 75 ns (= 25 ns, wrapping) — comfortably covering the clock edge.
	b := scaldtv.NewBuilder("quickstart")
	b.SetPeriod(scaldtv.NS(50))
	b.SetClockUnit(scaldtv.NS(6.25))

	ck := b.Net("CK .P0-4")            // precision clock, high 0–25 ns, rises at the cycle boundary
	data := b.Vector("DATA .S6-12", 8) // stable 37.5 → 25 ns (wrapping)
	q := b.Vector("Q", 8)

	b.Register("OUT REG", scaldtv.Delay(1.5, 4.5), q,
		scaldtv.Conn{Net: ck}, scaldtv.Conns(data...))
	b.SetupHold("OUT REG CHK", scaldtv.NS(2.5), scaldtv.NS(1.5),
		scaldtv.Conns(data...), scaldtv.Conn{Net: ck})

	design, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := scaldtv.Verify(design, scaldtv.Options{KeepWaves: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(scaldtv.Summary(res))
	fmt.Println()
	fmt.Print(scaldtv.TimingSummary(res, 0))
	fmt.Println()
	fmt.Print(scaldtv.ErrorListing(res))

	// Now break the timing: assert the data stable only from 48.75 ns —
	// 0.25 ns of set-up where 2.5 ns is required.
	fmt.Println("\n---- with late data ----")
	late, err := scaldtv.VerifySource(`
design "QUICKSTART LATE"
period 50ns
clockunit 6.25ns
reg "OUT REG" delay=(1.5,4.5) ("CK .P0-4", "DATA .S7.8-12"<0:7>) -> (Q<0:7>)
setuphold "OUT REG CHK" setup=2.5 hold=1.5 ("DATA .S7.8-12"<0:7>, "CK .P0-4")
`, scaldtv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scaldtv.ErrorListing(late))
}
