package lib

import (
	"strings"
	"testing"

	"scaldtv/internal/expand"
	"scaldtv/internal/hdl"
	"scaldtv/internal/netlist"
	"scaldtv/internal/verify"
)

func TestLibraryParses(t *testing.T) {
	ms, err := Macros()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(Names()) {
		t.Fatalf("library defines %d macros, Names lists %d", len(ms), len(Names()))
	}
	byName := map[string]bool{}
	for _, m := range ms {
		byName[m.Name] = true
	}
	for _, n := range Names() {
		if !byName[n] {
			t.Errorf("macro %q missing from library", n)
		}
	}
}

func expandAndVerify(t *testing.T, body string) *verify.Result {
	t.Helper()
	src := `
design LIBTEST
period 50ns
clockunit 6.25ns
defaultwire 0ns 2ns
skew precision -1ns 1ns
` + Prelude + body
	f, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := expand.Expand(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegisterMacroClean(t *testing.T) {
	// Data stable 37.5→25 (wrapping) against the clock rising at ~50:
	// comfortable set-up and hold.
	res := expandAndVerify(t, `
use "REG 10176" R1 SIZE=8 (CK="CK .P0-4", I="DATA .S6-12"<0:7>, Q=QOUT<0:7>)
`)
	if res.Errors() {
		t.Errorf("register macro flagged a clean circuit: %v", res.Violations)
	}
}

func TestRegisterMacroCatchesLateData(t *testing.T) {
	res := expandAndVerify(t, `
use "REG 10176" R1 SIZE=8 (CK="CK .P0-4", I="DATA .S7.8-8"<0:7>, Q=QOUT<0:7>)
`)
	found := false
	for _, v := range res.Violations {
		if v.Kind == verify.SetupViolation && strings.Contains(v.Prim, "R1/I CHK") {
			found = true
		}
	}
	if !found {
		t.Errorf("late data not caught: %v", res.Violations)
	}
}

func TestRAMMacro(t *testing.T) {
	// A well-timed write: WE pulse from the low-asserted strobe 12.5–18.75
	// (≈6.25 ns wide), addresses and data stable early.
	res := expandAndVerify(t, `
and "WE GATE" delay=(1.0,2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE)
use "16W RAM 10145A" RAM1 SIZE=8 (I="W DATA .S0-5"<0:7>, A="ADR .S0-5"<0:3>, WE=WE, CS="CS SEL .S0-8", DO=DO)
`)
	if res.Errors() {
		t.Errorf("RAM macro flagged a clean write: %v", res.Violations)
	}
}

func TestRAMMacroCatchesNarrowPulse(t *testing.T) {
	// A 2-unit-wide strobe shrunk to 3 ns by an explicit width clock:
	// narrower than the 4.0 ns minimum write pulse.
	res := expandAndVerify(t, `
and "WE GATE" delay=(1.0,2.9) (-"CK .P(0,0)2+3.0 L" &H, -"WRITE .S0-6 L") -> (WE)
use "16W RAM 10145A" RAM1 SIZE=8 (I="W DATA .S0-5"<0:7>, A="ADR .S0-5"<0:3>, WE=WE, CS="CS SEL .S0-8", DO=DO)
`)
	found := false
	for _, v := range res.Violations {
		if v.Kind == verify.MinPulseHighViolation {
			found = true
		}
	}
	if !found {
		t.Errorf("narrow write pulse not caught: %v", res.Violations)
	}
}

func TestALUMacro(t *testing.T) {
	// Operands stable from 12.5; latch open 25–31.25; the CHG settles by
	// 12.5+2(wire)+6.5 = 21 — well before the latch closes.
	res := expandAndVerify(t, `
use "ALU 10181" ALU1 SIZE=8 (A="A OP .S2-9"<0:7>, B="B OP .S2-9"<0:7>, C1="CARRY .S2-9", S="FN .S2-9"<0:3>, E="LATCH EN .P4-5", F=F<0:7>)
`)
	if res.Errors() {
		t.Errorf("ALU macro flagged a clean circuit: %v", res.Violations)
	}
}

func TestALUMacroCatchesLateOperand(t *testing.T) {
	// Operands settle only at 31.25: after the latch has closed.
	res := expandAndVerify(t, `
use "ALU 10181" ALU1 SIZE=8 (A="A OP .S5-9"<0:7>, B="B OP .S5-9"<0:7>, C1="CARRY .S2-9", S="FN .S2-9"<0:3>, E="LATCH EN .P4-5", F=F<0:7>)
`)
	found := false
	for _, v := range res.Violations {
		if v.Kind == verify.SetupViolation && strings.Contains(v.Prim, "ALU1") {
			found = true
		}
	}
	if !found {
		t.Errorf("late operand not caught: %v", res.Violations)
	}
}

func TestMuxAndOrMacros(t *testing.T) {
	res := expandAndVerify(t, `
use "2 MUX 10173" M1 SIZE=8 (S="SEL .S0-8", D0="A BUS .S0-6"<0:7>, D1="B BUS .S0-6"<0:7>, O=OBUS<0:7>)
use "2 OR 10101" G1 (A=OBUS<3>, B="C IN .S0-6", O=ORED)
`)
	if res.Errors() {
		t.Errorf("mux/or macros flagged a clean circuit: %v", res.Violations)
	}
}

func TestCorrMacro(t *testing.T) {
	ms, _ := Macros()
	var corr *hdl.Macro
	for _, m := range ms {
		if m.Name == "CORR 5NS" {
			corr = m
		}
	}
	if corr == nil {
		t.Fatal("CORR macro missing")
	}
	if len(corr.Body) != 1 || corr.Body[0].Kind != "buf" {
		t.Errorf("CORR body wrong: %+v", corr.Body)
	}
}

func TestLibraryPrimCensus(t *testing.T) {
	src := `
design CENSUS
period 50ns
clockunit 6.25ns
` + Prelude + `
use "REG 10176" R1 SIZE=8 (CK="CK .P0-4", I="DATA .S6-12"<0:7>, Q=QOUT<0:7>)
use "ALU 10181" A1 SIZE=8 (A=QOUT<0:7>, B="B OP .S2-9"<0:7>, C1="CARRY .S2-9", S="FN .S2-9"<0:3>, E="LATCH EN .P4-5", F=F<0:7>)
`
	f, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := expand.Expand(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Census[netlist.KReg] != 1 || rep.Census[netlist.KLatch] != 1 || rep.Census[netlist.KChg] != 1 {
		t.Errorf("census wrong: %+v", rep.Census)
	}
	if rep.Census[netlist.KSetupHold] != 2 {
		t.Errorf("checker census wrong: %+v", rep.Census)
	}
}
