// Package hdl implements a textual equivalent of the SCALD Hardware
// Description Language (McWilliams 1980, §2.4, §3.1).  The original
// language is graphical — schematics drawn in SUDS — so this package
// defines a text grammar carrying the same information: hierarchical
// macros with value parameters, vectored ports with computed bit ranges,
// signal names with embedded timing assertions ("W DATA .S0-6"),
// complement rails ("-WE"), evaluation directives ("&H"), and the
// case-analysis specifications of §2.7.1.
//
// Grammar sketch (';' introduces a comment to end of line):
//
//	design EXAMPLE;
//	period 50ns;  clockunit 6.25ns;
//	defaultwire 0ns 2ns;
//	skew precision -1ns 1ns;
//	skew clock -5ns 5ns;
//
//	macro "16W RAM 10145A" (SIZE) {
//	    param I<0:SIZE-1>, A<0:3>, WE, DO<0:SIZE-1>;
//	    chg delay=(5.0, 9.0) (A<0:3>, WE) -> (DO<0:SIZE-1>);
//	    setuphold setup=4.5 hold=-1.0 (I<0:SIZE-1>, -WE);
//	    setupriseholdfall setup=3.5 hold=1.0 (A<0:3>, WE);
//	    minpulse high=4.0 (WE);
//	}
//
//	and "WE GATE" delay=(1.0, 2.9) (-"CK .P2-3 L" &H, -"WRITE .S0-6 L") -> (WE);
//	use "16W RAM 10145A" RAM1 SIZE=32 (I="W DATA .S0-6"<0:31>, A=ADR<0:3>, WE=WE, DO=DO<0:31>);
//	wire ADR 0ns 6ns;
//	case "CONTROL SIGNAL" = 0;
//	case "CONTROL SIGNAL" = 1;
package hdl

import (
	"fmt"
	"strings"
)

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TEOF    TokKind = iota
	TIdent          // bare identifier or keyword
	TString         // quoted signal or macro name
	TNumber         // numeric literal, possibly with a unit suffix (50ns, 6.25)
	TPunct          // single punctuation rune, or the two-rune arrow "->"
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "end of input"
	case TString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Lexer tokenizes HDL source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == ';':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentBody(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.  Lexical errors are returned as an error.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TEOF
		return tok, nil
	}
	c := l.peekByte()
	switch {
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, fmt.Errorf("hdl:%d:%d: unterminated string", tok.Line, tok.Col)
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return tok, fmt.Errorf("hdl:%d:%d: newline in string", tok.Line, tok.Col)
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TString
		tok.Text = sb.String()
		return tok, nil
	case isIdentStart(c):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentBody(l.peekByte()) {
			sb.WriteByte(l.advance())
		}
		tok.Kind = TIdent
		tok.Text = sb.String()
		return tok, nil
	case isDigit(c):
		var sb strings.Builder
		for l.pos < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == '.') {
			sb.WriteByte(l.advance())
		}
		// Optional unit suffix glued to the number (50ns, 3us).
		for l.pos < len(l.src) && isIdentStart(l.peekByte()) {
			sb.WriteByte(l.advance())
		}
		tok.Kind = TNumber
		tok.Text = sb.String()
		return tok, nil
	case c == '-':
		l.advance()
		if l.peekByte() == '>' {
			l.advance()
			tok.Kind = TPunct
			tok.Text = "->"
			return tok, nil
		}
		tok.Kind = TPunct
		tok.Text = "-"
		return tok, nil
	case strings.IndexByte("(){}<>,=:&/*+", c) >= 0:
		l.advance()
		tok.Kind = TPunct
		tok.Text = string(c)
		return tok, nil
	}
	return tok, fmt.Errorf("hdl:%d:%d: unexpected character %q", tok.Line, tok.Col, c)
}

// LexAll tokenizes the entire input (for tests and error recovery).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == TEOF {
			return out, nil
		}
	}
}
