package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"scaldtv"
	"scaldtv/internal/netlist"
	"scaldtv/internal/report"
	"scaldtv/internal/serr"
	"scaldtv/internal/store"
	"scaldtv/internal/tape"
)

// WorkerConfig tunes an engine worker.
type WorkerConfig struct {
	// Store, when non-nil, answers whole-run sub-jobs of already-seen
	// designs from the persistent content-addressed cache and persists
	// fresh whole-run outcomes back, exactly like a standalone daemon.
	Store *store.Store
	// DesignCache bounds the in-memory LRU of compiled designs (with
	// their attached tape programs and warm memo tables).  Default 64.
	DesignCache int
}

// Worker is the engine half of the cluster: it owns a design cache and
// answers batched sub-jobs over POST /v1/batch.  It carries no
// cross-request verification state beyond its caches, so a worker that
// dies mid-batch loses nothing the coordinator cannot re-dispatch: every
// sub-job is a pure function of (source, case range, options).
type Worker struct {
	cfg     WorkerConfig
	designs *designCache
	mux     *http.ServeMux

	batches   atomic.Int64 // batch RPCs served
	jobs      atomic.Int64 // sub-jobs evaluated (store hits included)
	storeHits atomic.Int64 // sub-jobs answered from the persistent store
	failures  atomic.Int64 // sub-jobs that returned an error
}

// NewWorker builds a Worker.
func NewWorker(cfg WorkerConfig) *Worker {
	w := &Worker{cfg: cfg, designs: newDesignCache(cfg.DesignCache), mux: http.NewServeMux()}
	w.mux.HandleFunc("POST /v1/batch", w.handleBatch)
	w.mux.HandleFunc("GET /healthz", w.handleHealthz)
	w.mux.HandleFunc("GET /metrics", w.handleMetrics)
	return w
}

// Handler returns the worker's HTTP handler, for mounting on a server
// (cmd/scaldtvd mounts it next to the ordinary service endpoints in
// -worker mode).
func (w *Worker) Handler() http.Handler { return w.mux }

// handleBatch evaluates one ndjson batch of sub-jobs, streaming results
// back one line per job in request order.  Jobs within a batch run
// sequentially — the coordinator decides parallelism by how it spreads
// batches over workers, and each job still parallelizes internally per
// its own Workers/IntraWorkers options.
func (w *Worker) handleBatch(rw http.ResponseWriter, r *http.Request) {
	w.batches.Add(1)
	rw.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := rw.(http.Flusher)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	out := bufio.NewWriter(rw)
	defer out.Flush()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		job, err := decodeJob(line)
		var res *SubResult
		if err != nil {
			res = &SubResult{Err: wireErr(serr.Newf(serr.Parse, "cluster: malformed sub-job: %v", err))}
		} else {
			res = w.runJob(r, job)
		}
		if err := writeResult(out, res); err != nil {
			return
		}
		out.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runJob evaluates one sub-job: design from cache (compiling at most
// once per source text), whole runs through the persistent store when
// configured, case subsets as a narrowed design sharing the base
// design's compiled tape and levelization.
func (w *Worker) runJob(r *http.Request, job *SubJob) *SubResult {
	w.jobs.Add(1)
	res := &SubResult{ID: job.ID}
	opts := job.Opts.Options()

	// Whole-run source-text fast path: answer from the persistent store
	// before even compiling (explore runs always execute, as in the
	// standalone daemon — snapshots cannot carry the exploration section).
	useStore := w.cfg.Store != nil && job.WholeRun() && !opts.Explore
	if useStore {
		if rep, ok := w.cfg.Store.ServeReportSource(job.Source, opts); ok {
			if part, err := report.ParsePart(rep); err == nil {
				w.storeHits.Add(1)
				res.Part, res.Provenance = part, string(store.Cached)
				return res
			}
		}
	}

	d, err := w.designs.compile(job.Source)
	if err != nil {
		w.failures.Add(1)
		res.Err = wireErr(err)
		return res
	}

	rd, err := narrow(d, job)
	if err != nil {
		w.failures.Add(1)
		res.Err = wireErr(err)
		return res
	}

	if rd != d && !opts.NoTape && !opts.NoCache {
		// Prime the compiled program and levelization on the cached base
		// design so every case-subset variant shares them (WithCases
		// copies both cache pointers at creation).  Compile errors are
		// left for the engine, which classifies them properly.
		if _, err := tape.For(d); err == nil {
			d.Levelization()
		}
	}

	if useStore {
		oc, err := store.Verify(r.Context(), w.cfg.Store, d, job.Source, opts, false)
		if err != nil {
			w.failures.Add(1)
			res.Err = wireErr(err)
			return res
		}
		if oc.Res != nil {
			res.Part = report.NewPartial(oc.Res)
		} else if res.Part, err = report.ParsePart(oc.Report); err != nil {
			w.failures.Add(1)
			res.Err = wireErr(serr.Newf(serr.Limit, "cluster: stored report unusable: %v", err))
			return res
		}
		if oc.Provenance == store.Cached {
			w.storeHits.Add(1)
		}
		res.Provenance = string(oc.Provenance)
		return res
	}

	result, err := scaldtv.VerifyContext(r.Context(), rd, opts)
	if err != nil {
		w.failures.Add(1)
		res.Err = wireErr(err)
		return res
	}
	res.Part = report.NewPartial(result)
	res.Provenance = string(store.Cold)
	return res
}

// narrow resolves a sub-job's case range against the design: the whole
// design for a whole-run job, a case-subset variant otherwise.
func narrow(d *netlist.Design, job *SubJob) (*netlist.Design, error) {
	if job.WholeRun() {
		return d, nil
	}
	total := len(d.Cases)
	if total == 0 {
		total = 1 // the single unmapped cycle
	}
	if job.CaseLo < 0 || job.CaseHi <= job.CaseLo || job.CaseHi > total {
		return nil, serr.Newf(serr.Limit,
			"cluster: case range [%d,%d) outside the %d declared case(s)", job.CaseLo, job.CaseHi, total)
	}
	if len(d.Cases) == 0 {
		// Only the identity range is expressible; it is the whole run.
		return d, nil
	}
	if job.CaseLo == 0 && job.CaseHi == len(d.Cases) {
		return d, nil
	}
	return d.WithCases(d.Cases[job.CaseLo:job.CaseHi]), nil
}

func decodeJob(line []byte) (*SubJob, error) {
	job := &SubJob{}
	if err := json.Unmarshal(line, job); err != nil {
		return nil, err
	}
	if job.Source == "" {
		return nil, fmt.Errorf("empty design source")
	}
	return job, nil
}

// writeResult emits one result line of the ndjson response.
func writeResult(w io.Writer, res *SubResult) error {
	return json.NewEncoder(w).Encode(res)
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(rw, "{\"status\":\"ok\",\"designs\":%d}\n", w.designs.len())
}

// handleMetrics renders the worker's Prometheus counters (the full
// service metrics live on the coordinator; workers expose only their
// engine-side view).
func (w *Worker) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("scaldtvw_batches_total", "Batch RPCs served.", w.batches.Load())
	counter("scaldtvw_subjobs_total", "Sub-jobs evaluated.", w.jobs.Load())
	counter("scaldtvw_store_hits_total", "Sub-jobs answered from the persistent store.", w.storeHits.Load())
	counter("scaldtvw_failures_total", "Sub-jobs that returned an error.", w.failures.Load())
	fmt.Fprintf(rw, "# HELP scaldtvw_designs Compiled designs held in the worker cache.\n# TYPE scaldtvw_designs gauge\nscaldtvw_designs %d\n", w.designs.len())
}
