package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"scaldtv/internal/gen"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// The intra-case contract under test: for every IntraWorkers value the
// verifier's reports — violations, margins, kept waveforms, the
// cross-reference — are bit-identical to the serial engine's, and between
// any two wavefront worker counts even the work counters (Events,
// PrimEvals, Sweeps) agree exactly.  Cache hit/miss counters are exempt:
// which worker takes a given miss is scheduling-dependent (see Stats).
// Run with -race to exercise the level worker pool.

func TestIntraDeterminism(t *testing.T) {
	d := buildMultiCase(t, 8)
	opts := func(iw int) Options {
		return Options{Workers: 1, IntraWorkers: iw, KeepWaves: true, Margins: true}
	}
	base, err := Run(d, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Violations) == 0 {
		t.Fatal("the multi-case design should produce violations to compare")
	}
	for _, iw := range []int{2, 8} {
		res, err := Run(d, opts(iw))
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, fmt.Sprintf("intra=1 vs %d", iw), base, res)
		if res.Stats.IntraWorkers != iw {
			t.Errorf("intra=%d: Stats.IntraWorkers = %d", iw, res.Stats.IntraWorkers)
		}
	}
	// Between wavefront runs the schedule decisions are made at barriers
	// from order-independent sums, so the work counters agree exactly.
	r2, err := Run(d, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(d, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	sameReports(t, "intra=2 vs 8", r2, r8)
	for i := range r2.Cases {
		if r2.Cases[i].Events != r8.Cases[i].Events || r2.Cases[i].PrimEvals != r8.Cases[i].PrimEvals {
			t.Errorf("case %d work counters differ between intra worker counts: %+v vs %+v",
				i, r2.Cases[i], r8.Cases[i])
		}
	}
	if r2.Stats.Sweeps != r8.Stats.Sweeps || r2.Stats.Sweeps == 0 {
		t.Errorf("sweep counts: intra=2 %d vs intra=8 %d (want equal, nonzero)",
			r2.Stats.Sweeps, r8.Stats.Sweeps)
	}
}

// TestIntraDeterminismGenerated repeats the check on a generated Mark
// IIA-style design — pipeline rings, registers, latches, muxes and
// checkers at scale — with and without the evaluation cache, and composed
// with case-level workers.
func TestIntraDeterminismGenerated(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 102, Cases: 4, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Violations) == 0 {
		t.Fatal("the injected slow path should produce violations")
	}
	variants := []Options{
		{Workers: 1, IntraWorkers: 2, KeepWaves: true, Margins: true},
		{Workers: 1, IntraWorkers: 8, KeepWaves: true, Margins: true},
		{Workers: 1, IntraWorkers: 4, KeepWaves: true, Margins: true, NoCache: true},
		{Workers: 2, IntraWorkers: 4, KeepWaves: true, Margins: true},
	}
	for _, o := range variants {
		res, err := Run(d, o)
		if err != nil {
			t.Fatal(err)
		}
		sameReports(t, fmt.Sprintf("gen workers=%d intra=%d nocache=%v",
			o.Workers, o.IntraWorkers, o.NoCache), base, res)
	}
}

// TestIntraExamples checks bit-identity on every example-style topology
// the generator can produce: plain, variable-cycle, and wired-OR bus
// designs, with multiple declared cases.
func TestIntraExamples(t *testing.T) {
	cfgs := map[string]gen.Config{
		"plain":    {Chips: 51, Cases: 2, Inject: 1},
		"varcycle": {Chips: 51, VariableCycle: true, Cases: 2},
	}
	for name, cfg := range cfgs {
		d, _, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, iw := range []int{2, 8} {
			res, err := Run(d, Options{Workers: 1, IntraWorkers: iw, KeepWaves: true, Margins: true})
			if err != nil {
				t.Fatal(err)
			}
			sameReports(t, fmt.Sprintf("%s intra=%d", name, iw), base, res)
		}
	}
}

// TestIntraReverify: the wavefront engine resumes a retained fixed point
// exactly like the serial engine — Reverify after random parameter edits
// stays bit-identical to a from-scratch serial run of the edited design.
func TestIntraReverify(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 34, Cases: 2, Inject: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 1, IntraWorkers: 4, KeepWaves: true, Margins: true}
	V := NewVerifier(d, opts)
	if _, err := V.Verify(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 5; step++ {
		ch, desc := randomEdit(t, d, rng)
		inc, err := V.Reverify(ch)
		if err != nil {
			t.Fatalf("step %d (%s): %v", step, desc, err)
		}
		if !inc.Stats.Incremental {
			t.Fatalf("step %d (%s): fell back to a full run", step, desc)
		}
		scratch, err := Run(d, Options{Workers: 1, KeepWaves: true, Margins: true})
		if err != nil {
			t.Fatalf("step %d (%s): scratch: %v", step, desc, err)
		}
		sameReports(t, fmt.Sprintf("step %d (%s)", step, desc), scratch, inc)
	}
}

// TestIntraWavefrontStats: the levelization counters are reported exactly
// when the wavefront engine runs — explicitly via IntraWorkers > 1 or
// implicitly via the tape — and stay zero under the serial engine (which
// requires NoTape, since the tape always sweeps level spans).
func TestIntraWavefrontStats(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 51, Cases: 2})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(d, Options{Workers: 1, NoTape: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.IntraWorkers != 0 || serial.Stats.Levels != 0 || serial.Stats.SCCs != 0 || serial.Stats.Sweeps != 0 {
		t.Errorf("serial run reports wavefront stats: %+v", serial.Stats)
	}
	tape, err := Run(d, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tape.Stats.Tape || tape.Stats.Levels == 0 || tape.Stats.SCCs == 0 || tape.Stats.Sweeps == 0 {
		t.Errorf("tape run should report wavefront stats: %+v", tape.Stats)
	}
	res, err := Run(d, Options{Workers: 1, IntraWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	lev := d.Levelization()
	st := res.Stats
	if st.IntraWorkers != 8 || st.Levels != len(lev.Levels) || st.SCCs != len(lev.Comps) ||
		st.FeedbackSCCs != lev.Feedback || st.Sweeps == 0 {
		t.Errorf("wavefront stats = %+v, levelization has %d levels / %d comps / %d feedback",
			st, len(lev.Levels), len(lev.Comps), lev.Feedback)
	}
}

// TestIntraConvergenceCap: pass-cap exhaustion is reported under the
// wavefront engine too (the cap is checked at barriers).
func TestIntraConvergenceCap(t *testing.T) {
	d := buildFig25(t)
	res, err := Run(d, Options{MaxPasses: 2, IntraWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == ConvergenceViolation {
			found = true
		}
	}
	if !found {
		t.Error("pass cap exhaustion should be reported under the wavefront engine")
	}
}

// TestQueueBoundedCapacity: the serial worklist's backing array stays
// bounded by the outstanding entries, not the total number of pops — the
// [1:] re-slice it replaced pinned the array head and regrew forever.
func TestQueueBoundedCapacity(t *testing.T) {
	b := netlist.NewBuilder("queue-bound")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.Range{})
	in := b.Net("IN .S0-50")
	prev := in
	const nPrims = 8
	for i := 0; i < nPrims; i++ {
		o := b.Net(fmt.Sprintf("N%d", i))
		b.Buf(fmt.Sprintf("B%d", i), tick.R(1, 2), []netlist.NetID{o}, netlist.Conns(prev))
		prev = o
	}
	d := b.MustBuild()
	v, _, err := initVerifier(d, Options{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A long pop-heavy workload: keep a couple of entries outstanding
	// while popping many thousands of times.
	for round := 0; round < 100000; round++ {
		v.enqueue(netlist.PrimID(round % nPrims))
		v.enqueue(netlist.PrimID((round + 1) % nPrims))
		p := v.popQueue()
		v.inQueue[p] = false
	}
	if got := cap(v.queue); got > 1024 {
		t.Errorf("queue backing array grew to %d entries; want bounded by outstanding work", got)
	}
	for v.queueLen() > 0 {
		p := v.popQueue()
		v.inQueue[p] = false
	}
	if v.queueLen() != 0 || v.qhead != 0 || len(v.queue) != 0 {
		t.Errorf("drained queue not reset: len=%d qhead=%d", len(v.queue), v.qhead)
	}
}
