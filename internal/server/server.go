// Package server implements scaldtvd, the verification service: an
// HTTP/JSON front-end over the scaldtv engine that holds compiled designs
// in memory and answers edit/re-verify requests, the paper's §2.6 modular
// re-verification loop turned into a long-running daemon.
//
// Endpoints:
//
//	POST   /v1/verify                  stateless: HDL source in, JSON report out
//	                                   (?delays= selects the delay model,
//	                                   repeatable ?param=name=value — or the
//	                                   JSON body's params field — binds design
//	                                   parameters, and the body's corners field
//	                                   queries the margin surface at extra
//	                                   parameter points from the one run)
//	POST   /v1/explore                 stateless automatic case exploration:
//	                                   the report carries the minimal case set
//	                                   discharging U/C-poisoned sites
//	                                   (?delays=statistical adds probabilities)
//	POST   /v1/sessions                compile + verify, retain a Verifier
//	PUT    /v1/sessions/{id}/design    diff against the retained design and
//	                                   re-verify the dirty cone only
//	GET    /v1/sessions/{id}/report    render the retained result
//	                                   (?format=json|errors|summary|xref)
//	DELETE /v1/sessions/{id}           evict a session
//	GET    /healthz                    liveness (503 while draining)
//	GET    /metrics                    Prometheus text-format counters
//
// The stateless verify response is byte-identical to `scaldtv -json` for
// the same source and options — the engine's report determinism contract
// carried over the wire.
//
// Admission control: verification work runs on a bounded pool of Pool
// slots with a bounded queue of Queue further requests; beyond that the
// server answers 429 with Retry-After instead of blocking unboundedly.
// Every request carries a deadline, and client disconnects cancel the
// verify cooperatively (kind canceled → 408).  During a drain (SIGTERM)
// new work is refused with 503 while in-flight verifies complete.
//
// Error mapping: structured scaldtv error kinds map onto HTTP statuses —
// parse → 400, elaborate/assertion → 422, canceled → 408, limit → 503.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"context"

	"scaldtv"
	"scaldtv/internal/cluster"
	"scaldtv/internal/serr"
	"scaldtv/internal/store"
)

// Config tunes the service.  The zero value gets sensible defaults from
// New.
type Config struct {
	// Options is the base verification configuration (Workers,
	// IntraWorkers, NoCache); stateless requests may override the worker
	// and cache settings per request, sessions fix them at creation.
	Options scaldtv.Options
	// Pool bounds the number of concurrently running verifications.  The
	// default sizes the pool against the per-run parallelism, so that
	// Pool × max(1, Workers×IntraWorkers) ≈ GOMAXPROCS: a server already
	// fanning each run out over every core admits one run at a time.
	Pool int
	// Queue bounds how many admitted requests may wait for a pool slot;
	// beyond Pool+Queue in flight the server answers 429.  Default 16.
	Queue int
	// MaxSessions bounds the session table; the least recently used
	// session is evicted beyond it.  Default 64.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this.  Default 30m.
	SessionTTL time.Duration
	// Timeout is the per-request verification deadline.  Default 60s.
	Timeout time.Duration
	// MaxBody bounds the request body size in bytes.  Default 8 MiB.
	MaxBody int64
	// Store, when non-nil, is the persistent content-addressed
	// verification cache: stateless verifies of already-seen designs are
	// answered from it without taking an admission slot, session creates
	// restore or warm-start from it, and every converged run is
	// persisted back.  Response bodies are byte-identical with or
	// without it; provenance travels out of band in the
	// X-Scaldtv-Provenance header and the session envelope.
	Store *store.Store
	// Cluster, when non-nil, turns this server into a coordinator:
	// verifications fan out across the cluster's engine workers (report
	// bytes stay identical to a local run) and session requests proxy to
	// the worker owning the session.  Admission control still applies —
	// the pool then bounds concurrent *distributed* runs.
	Cluster *cluster.Coordinator
	// TenantQueue bounds how many admitted requests may wait for a pool
	// slot per tenant (the X-Scaldtv-Tenant header; empty means the
	// shared "default" tenant).  Waiters are granted round-robin across
	// tenants, so one tenant's burst cannot starve another's queue.
	// Default Queue.
	TenantQueue int
	// MaxTenants bounds how many distinct tenants are tracked before new
	// ones aggregate into the shared "other" bucket.  Default 64.
	MaxTenants int

	// now substitutes the clock (session TTL tests).
	now func() time.Time
	// onVerifyStart, when set, runs inside the admitted pool slot just
	// before verification begins (admission and cancellation tests).
	onVerifyStart func(ctx context.Context)
}

// Server is the verification service.  Create one with New, mount
// Handler on an http.Server, and call SetDraining(true) before Shutdown.
type Server struct {
	cfg      Config
	pool     int
	queue    int
	fq       *fairQueue
	draining atomic.Bool
	sessions *sessionTable
	met      metrics
	mux      *http.ServeMux
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	perRun := cfg.Options.Workers
	if perRun <= 0 {
		perRun = runtime.GOMAXPROCS(0)
	}
	if cfg.Options.IntraWorkers > 1 {
		perRun *= cfg.Options.IntraWorkers
	}
	if cfg.Pool <= 0 {
		cfg.Pool = runtime.GOMAXPROCS(0) / perRun
		if cfg.Pool < 1 {
			cfg.Pool = 1
		}
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 30 * time.Minute
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.TenantQueue <= 0 {
		cfg.TenantQueue = cfg.Queue
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:      cfg,
		pool:     cfg.Pool,
		queue:    cfg.Queue,
		fq:       newFairQueue(cfg.Pool, cfg.TenantQueue, cfg.MaxTenants),
		sessions: newSessionTable(cfg.MaxSessions, cfg.SessionTTL, cfg.now),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("PUT /v1/sessions/{id}/design", s.handleSessionUpdate)
	s.mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleSessionReport)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetDraining flips drain mode: while draining every new request is
// refused with 503 (and /healthz reports draining), but verifications
// already admitted run to completion.  Call it before http.Server
// Shutdown so load balancers stop routing while in-flight work finishes.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// QueueDepth reports how many admitted requests currently hold or wait
// for a verification slot.
func (s *Server) QueueDepth() int { return s.fq.depth() }

// Admission sentinels, mapped to 429 / 503 by writeErr.
var (
	errOverloaded = errors.New("server: verification queue is full")
	errDraining   = errors.New("server: draining, not accepting new work")
)

// admit reserves a verification slot for the request's tenant, waiting
// in the tenant's bounded queue when the pool is busy.  It never blocks
// unboundedly: a tenant with a full queue fails fast with errOverloaded,
// and a canceled request frees its queue position immediately.  The
// returned release func must be called once.
func (s *Server) admit(ctx context.Context, r *http.Request) (func(), error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	release, err := s.fq.admit(ctx, r.Header.Get(tenantHeader))
	if errors.Is(err, errOverloaded) {
		s.met.rejected.Add(1)
	}
	return release, err
}

// reqCtx attaches the per-request verification deadline to the request's
// own context (which the net/http server cancels on client disconnect).
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.Timeout)
}

// verifyRequest is the JSON request body; the same fields are accepted as
// query parameters (lib, j, intra, cache) over a raw-source body, so
// `curl --data-binary @design.scald '…/v1/verify?lib=1'` works without
// JSON quoting.  The parameters mirror the scaldtv flags of the same
// names.
type verifyRequest struct {
	Source  string `json:"source"`
	Lib     bool   `json:"lib"`
	Workers *int   `json:"workers"`
	Intra   *int   `json:"intra"`
	Cache   *bool  `json:"cache"`

	// Delays selects the delay model ("worstcase", "statistical",
	// "analytic"); Params binds design parameters for the analytic model
	// (present Params imply it).  Corners, valid only with the analytic
	// model, asks the margin surface of the one verification run to
	// evaluate the listed parameter points: the response then becomes
	// {"report": <standard report>, "corners": [...]} with one entry per
	// queried point.
	Delays  string               `json:"delays,omitempty"`
	Params  map[string]float64   `json:"params,omitempty"`
	Corners []map[string]float64 `json:"corners,omitempty"`
}

// readRequest decodes a verification request: the HDL source (library
// appended when lib is set), the effective options and any corner
// queries.  The delay model comes from the JSON body (delays, params)
// or the query string (?delays=, repeatable ?param=name=value), query
// winning; parameter bindings imply the analytic model, mirroring the
// scaldtv -param flag.
func (s *Server) readRequest(r *http.Request) (src string, opts scaldtv.Options, corners []map[string]float64, err error) {
	opts = s.cfg.Options
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return "", opts, nil, serr.Newf(serr.Limit, "server: request body over %d bytes", s.cfg.MaxBody)
		}
		return "", opts, nil, serr.Wrap(serr.Canceled, err)
	}
	req := verifyRequest{}
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return "", opts, nil, serr.Newf(serr.Parse, "server: request body: %v", err)
		}
	} else {
		req.Source = string(body)
	}
	q := r.URL.Query()
	boolParam := func(name string, cur bool) (bool, error) {
		v := q.Get(name)
		if v == "" {
			return cur, nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return cur, serr.Newf(serr.Parse, "server: query parameter %s=%q: %v", name, v, err)
		}
		return b, nil
	}
	intParam := func(name string, cur *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return serr.Newf(serr.Parse, "server: query parameter %s=%q must be a non-negative integer", name, v)
		}
		*cur = n
		return nil
	}
	if req.Workers != nil {
		opts.Workers = *req.Workers
	}
	if req.Intra != nil {
		opts.IntraWorkers = *req.Intra
	}
	if req.Cache != nil {
		opts.NoCache = !*req.Cache
	}
	if err := intParam("j", &opts.Workers); err != nil {
		return "", opts, nil, err
	}
	if err := intParam("intra", &opts.IntraWorkers); err != nil {
		return "", opts, nil, err
	}
	cache, err := boolParam("cache", !opts.NoCache)
	if err != nil {
		return "", opts, nil, err
	}
	opts.NoCache = !cache
	lib, err := boolParam("lib", req.Lib)
	if err != nil {
		return "", opts, nil, err
	}
	delays := req.Delays
	if v := q.Get("delays"); v != "" {
		delays = v
	}
	params := map[string]float64{}
	for name, v := range req.Params {
		params[name] = v
	}
	for _, pv := range q["param"] {
		name, val, ok := strings.Cut(pv, "=")
		if !ok || name == "" {
			return "", opts, nil, serr.Newf(serr.Parse, "server: query parameter param=%q: want name=value", pv)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return "", opts, nil, serr.Newf(serr.Parse, "server: query parameter param=%q: %v", pv, err)
		}
		params[name] = f
	}
	if delays != "" || len(params) > 0 {
		dm, err := scaldtv.ParseDelayModel(delays)
		if err != nil {
			return "", opts, nil, serr.Newf(serr.Parse, "server: delays=%q: %v", delays, err)
		}
		if len(params) > 0 {
			if !scaldtv.IsWorstCase(dm) && delays != "analytic" {
				return "", opts, nil, serr.Newf(serr.Parse, "server: parameter bindings require the analytic delay model, not delays=%q", delays)
			}
			dm = scaldtv.AnalyticDelays{Params: params}
		}
		opts.Delays = dm
	}
	if len(req.Corners) > 0 && !isAnalytic(opts) {
		return "", opts, nil, serr.Newf(serr.Parse, "server: corner queries require the analytic delay model")
	}
	if req.Source == "" {
		return "", opts, nil, serr.Newf(serr.Parse, "server: empty design source")
	}
	src = req.Source
	if lib {
		src += "\n" + scaldtv.Library
	}
	return src, opts, req.Corners, nil
}

// isAnalytic reports whether the effective delay model is the analytic
// one.
func isAnalytic(opts scaldtv.Options) bool {
	_, ok := opts.Delays.(scaldtv.AnalyticDelays)
	return ok
}

// delayProvenance renders the active delay model and its parameter
// bindings for the X-Scaldtv-Provenance header; empty for the worst-case
// default, so the header bytes of pre-existing requests do not change.
func delayProvenance(opts scaldtv.Options) string {
	switch m := opts.Delays.(type) {
	case scaldtv.StatisticalDelays:
		if m.Grid > 0 {
			return fmt.Sprintf("delays=statistical grid=%d", int64(m.Grid))
		}
		return "delays=statistical"
	case scaldtv.AnalyticDelays:
		var sb strings.Builder
		sb.WriteString("delays=analytic")
		names := make([]string, 0, len(m.Params))
		for name := range m.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, " %s=%s", name, strconv.FormatFloat(m.Params[name], 'g', -1, 64))
		}
		return sb.String()
	}
	return ""
}

// joinProvenance combines the store provenance and the delay-model
// description into one X-Scaldtv-Provenance header value.
func joinProvenance(prov, model string) string {
	switch {
	case prov == "":
		return model
	case model == "":
		return prov
	default:
		return prov + "; " + model
	}
}

// handleVerify is the stateless POST /v1/verify endpoint.  The response
// body is byte-identical to `scaldtv -json` for the same input: the JSON
// report followed by one newline.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	src, opts, corners, err := s.readRequest(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeReport := func(rep []byte, provenance store.Provenance) {
		if p := joinProvenance(string(provenance), delayProvenance(opts)); p != "" {
			w.Header().Set("X-Scaldtv-Provenance", p)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep)
		io.WriteString(w, "\n")
	}
	if s.cfg.Cluster != nil && len(corners) == 0 {
		// Coordinator mode: the run fans out across the engine workers
		// (the coordinator compiles through its own design cache and the
		// workers answer from theirs, so no local compile happens here)
		// and the merged report is byte-identical to a local run.
		release, err := s.admit(ctx, r)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		defer release()
		if s.cfg.onVerifyStart != nil {
			s.cfg.onVerifyStart(ctx)
		}
		start := time.Now()
		rep, prov, err := s.cfg.Cluster.Verify(ctx, src, opts)
		if err != nil {
			s.met.failures.Add(1)
			s.writeErr(w, err)
			return
		}
		s.met.observeWall(time.Since(start))
		writeReport(rep, store.Provenance(prov))
		return
	}
	// Restored snapshots cannot carry the statistical or margin-surface
	// report sections, so non-worst-case delay models always run the
	// engine directly, exactly as the scaldtv driver does.
	useStore := s.cfg.Store != nil && scaldtv.IsWorstCase(opts.Delays)
	if useStore {
		// Source-text fast path: an exact repeat of a verified request is
		// answered before the design is even compiled — parsing and
		// elaborating a large design costs tens of milliseconds, the
		// store probe a directory scan and a checksum pass.  It also
		// bypasses admission control: a busy pool cannot queue (or
		// reject) a request the engine never needs to see.
		if rep, ok := s.cfg.Store.ServeReportSource(src, opts); ok {
			s.met.storeHits.Add(1)
			writeReport(rep, store.Cached)
			return
		}
	}
	d, err := scaldtv.Compile(src)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if useStore {
		// Second-level exact hit on the design fingerprint: catches a
		// textually different spelling of an already-verified design
		// (reformatted source, renamed macros), still without engine work.
		if rep, ok := s.cfg.Store.ServeReport(d, opts); ok {
			s.met.storeHits.Add(1)
			writeReport(rep, store.Cached)
			return
		}
	}
	release, err := s.admit(ctx, r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	if s.cfg.onVerifyStart != nil {
		s.cfg.onVerifyStart(ctx)
	}
	start := time.Now()
	if useStore {
		oc, err := store.Verify(ctx, s.cfg.Store, d, src, opts, false)
		if err != nil {
			s.met.failures.Add(1)
			s.writeErr(w, err)
			return
		}
		if oc.Res != nil {
			s.met.observe(oc.Res, time.Since(start))
		}
		switch oc.Provenance {
		case store.Cached: // a concurrent writer won the race since the probe
			s.met.storeHits.Add(1)
		case store.Warm:
			s.met.storeWarm.Add(1)
		}
		writeReport(oc.Report, oc.Provenance)
		return
	}
	res, err := scaldtv.VerifyContext(ctx, d, opts)
	if err != nil {
		s.met.failures.Add(1)
		s.writeErr(w, err)
		return
	}
	s.met.observe(res, time.Since(start))
	out, err := scaldtv.JSONReport(res)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if len(corners) > 0 {
		out, err = cornerResponse(res, out, corners)
		if err != nil {
			s.writeErr(w, err)
			return
		}
	}
	writeReport(out, "")
}

// cornerBody is the response of a corner-querying verification: the
// standard JSON report plus, per queried parameter point, the slack of
// every margin-surface site evaluated there — one engine run answering
// every corner.
type cornerBody struct {
	Report  json.RawMessage `json:"report"`
	Corners []cornerAnswer  `json:"corners"`
}

type cornerAnswer struct {
	Params     map[string]float64 `json:"params"`
	Violations []cornerViolation  `json:"violations,omitempty"`
	Pass       bool               `json:"pass"`
}

type cornerViolation struct {
	Checker string `json:"checker"`
	Data    string `json:"data,omitempty"`
	Case    string `json:"case,omitempty"`
	SlackNS string `json:"slack_ns"`
}

// cornerResponse evaluates the run's margin surface at each queried
// parameter point and wraps the report with the answers.  Points outside
// the declared parameter box (or naming unknown parameters) are request
// errors.
func cornerResponse(res *scaldtv.Result, rep []byte, corners []map[string]float64) ([]byte, error) {
	ms := res.MarginSurface
	if ms == nil {
		return nil, serr.Newf(serr.Elaborate, "server: corner queries require the analytic delay model")
	}
	body := cornerBody{Report: rep, Corners: make([]cornerAnswer, 0, len(corners))}
	for _, c := range corners {
		vio, err := ms.Violations(c)
		if err != nil {
			return nil, serr.Newf(serr.Parse, "server: corner query: %v", err)
		}
		ans := cornerAnswer{Params: c, Pass: len(vio) == 0}
		if ans.Params == nil {
			ans.Params = map[string]float64{}
		}
		for _, v := range vio {
			site := &ms.Sites[v.Site]
			ans.Violations = append(ans.Violations, cornerViolation{
				Checker: site.Prim,
				Data:    site.Data,
				Case:    site.Case,
				SlackNS: v.Slack.String(),
			})
		}
		body.Corners = append(body.Corners, ans)
	}
	return json.MarshalIndent(&body, "", "  ")
}

// handleExplore is the stateless POST /v1/explore endpoint: automatic
// case exploration over the same request shape as /v1/verify, answered
// with the JSON report carrying the exploration section (and, with
// ?delays=statistical, per-site violation probabilities).  The response
// is byte-identical to `scaldtv -explore -json` for the same input.
// Restored snapshots cannot carry the exploration section, so this
// endpoint always runs the engine — there is no store fast path — and
// provenance is simply absent.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	src, opts, _, err := s.readRequest(r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	opts.Explore = true
	if s.cfg.Cluster != nil {
		release, err := s.admit(ctx, r)
		if err != nil {
			s.writeErr(w, err)
			return
		}
		defer release()
		if s.cfg.onVerifyStart != nil {
			s.cfg.onVerifyStart(ctx)
		}
		start := time.Now()
		rep, _, err := s.cfg.Cluster.Verify(ctx, src, opts)
		if err != nil {
			s.met.failures.Add(1)
			s.writeErr(w, err)
			return
		}
		s.met.observeWall(time.Since(start))
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep)
		io.WriteString(w, "\n")
		return
	}
	d, err := scaldtv.Compile(src)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	release, err := s.admit(ctx, r)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	defer release()
	if s.cfg.onVerifyStart != nil {
		s.cfg.onVerifyStart(ctx)
	}
	start := time.Now()
	res, err := scaldtv.VerifyContext(ctx, d, opts)
	if err != nil {
		s.met.failures.Add(1)
		s.writeErr(w, err)
		return
	}
	s.met.observe(res, time.Since(start))
	out, err := scaldtv.JSONReport(res)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
	io.WriteString(w, "\n")
}

// errBody is the JSON error response.
type errBody struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
		Line    int    `json:"line,omitempty"`
		Col     int    `json:"col,omitempty"`
	} `json:"error"`
}

// statusFor maps an error onto its HTTP status: admission sentinels
// first, then the structured kind.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errNoSession):
		return http.StatusNotFound
	case errors.Is(err, errSessionGone):
		return http.StatusGone
	}
	switch serr.KindOf(err) {
	case serr.Parse:
		return http.StatusBadRequest
	case serr.Elaborate, serr.Assertion:
		return http.StatusUnprocessableEntity
	case serr.Canceled:
		return http.StatusRequestTimeout
	case serr.Limit:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeErr renders err as a JSON error response with the mapped status.
// Overload and drain responses carry Retry-After so well-behaved clients
// back off instead of hammering the queue.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	var body errBody
	body.Error.Kind = serr.KindOf(err).String()
	body.Error.Message = err.Error()
	var se *serr.Error
	if errors.As(err, &se) {
		body.Error.Line = se.Pos.Line
		body.Error.Col = se.Pos.Col
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc, _ := json.MarshalIndent(&body, "", "  ")
	w.Write(enc)
	io.WriteString(w, "\n")
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"sessions\":%d,\"queue_depth\":%d}\n",
		status, s.sessions.len(), s.QueueDepth())
}

// handleMetrics renders the Prometheus text-format counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, s.QueueDepth(), s.sessions.len())
	renderTenants(w, s.fq.snapshot())
	if s.cfg.Cluster != nil {
		renderCluster(w, s.cfg.Cluster.Snapshot())
	}
}

// clusterProxy forwards a session-scoped request to its owner worker
// when running as a coordinator; it reports whether it handled the
// request.  Session state lives worker-side, so the coordinator routes
// by session id (exactly, via the route table) or, for creates, by the
// design source — repeat creates of one design land on the worker
// already holding it compiled and warm.
func (s *Server) clusterProxy(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Cluster == nil {
		return false
	}
	if s.draining.Load() {
		s.writeErr(w, errDraining)
		return true
	}
	key := r.PathValue("id")
	if key == "" {
		body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBody))
		if err != nil {
			s.writeErr(w, serr.Newf(serr.Limit, "server: reading request body: %v", err))
			return true
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		key = string(body)
	}
	if !s.cfg.Cluster.ProxySession(w, r, key) {
		s.writeErr(w, serr.Newf(serr.Limit, "server: no cluster worker reachable"))
	}
	return true
}
