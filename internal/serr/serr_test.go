package serr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindUnknown: "unknown",
		Parse:       "parse",
		Elaborate:   "elaborate",
		Assertion:   "assertion",
		Limit:       "limit",
		Canceled:    "canceled",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSentinelMatching(t *testing.T) {
	err := New(Parse, Pos{Line: 3, Col: 7}, "hdl:3:7: expected a name")
	if !errors.Is(err, Sentinel(Parse)) {
		t.Error("parse error does not match the parse sentinel")
	}
	if errors.Is(err, Sentinel(Elaborate)) {
		t.Error("parse error matches the elaborate sentinel")
	}
	// Wrapped one level deep, the sentinel still matches.
	wrapped := fmt.Errorf("outer: %w", err)
	if !errors.Is(wrapped, Sentinel(Parse)) {
		t.Error("wrapped parse error does not match the parse sentinel")
	}
	var se *Error
	if !errors.As(wrapped, &se) || se.Pos.Line != 3 || se.Pos.Col != 7 {
		t.Errorf("errors.As lost the position: %+v", se)
	}
}

func TestWrapPreservesExisting(t *testing.T) {
	inner := New(Assertion, Pos{}, "verify: net X: bad window")
	if got := Wrap(Elaborate, inner); got != error(inner) {
		t.Errorf("Wrap reclassified an already-structured error: %v", got)
	}
	outer := fmt.Errorf("context: %w", inner)
	if got := Wrap(Elaborate, outer); got != outer {
		t.Errorf("Wrap reclassified a wrapping of a structured error: %v", got)
	}
	if Wrap(Parse, nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
	plain := errors.New("boom")
	got := Wrap(Limit, plain)
	if KindOf(got) != Limit || got.Error() != "boom" {
		t.Errorf("Wrap(plain) = kind %v, msg %q", KindOf(got), got.Error())
	}
	if !errors.Is(got, plain) {
		t.Error("wrapped error lost its cause")
	}
}

func TestCanceledWrapsContextCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Wrap(Canceled, ctx.Err())
	if !errors.Is(err, context.Canceled) {
		t.Error("canceled error does not match context.Canceled")
	}
	if !errors.Is(err, Sentinel(Canceled)) {
		t.Error("canceled error does not match the canceled sentinel")
	}
}

func TestKindOfUnknown(t *testing.T) {
	if KindOf(errors.New("plain")) != KindUnknown {
		t.Error("plain error classified")
	}
	if KindOf(nil) != KindUnknown {
		t.Error("nil error classified")
	}
}
