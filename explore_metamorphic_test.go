package scaldtv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Metamorphic properties of the case explorer.  The explorer's choices
// are tie-broken on declared net order, never on names, so a rename
// that preserves the declaration order of every signal must leave the
// exploration isomorphic: same sites, same candidate ranking, same
// chosen splits, same minimal case set — with only the names mapped.
// (The companion byte-determinism property — identical reports across
// worker counts and engines — lives in TestExploreJSONByteDeterminism.)

// exploreRename maps every identifier of the case-analysis example to a
// fresh name.  Longer keys come first so the Replacer never splits
// "CONTROL SIGNAL" into a rename of a shorter token.
var exploreRename = [][2]string{
	{"FIG 2-6 CASE ANALYSIS", "FIG 2-6 RENAMED"},
	{"CONTROL SIGNAL", "STEER BIT"},
	{"DELAY A", "PAD A"},
	{"DELAY B", "PAD B"},
	{"MUX 1", "SEL 1"},
	{"MUX 2", "SEL 2"},
	{"INPUT", "SOURCE"},
	{"OUTPUT", "SINK"},
	{"D1", "E7"},
	{"D2", "E8"},
	{"M1", "E9"},
}

func renamer() *strings.Replacer {
	var pairs []string
	for _, p := range exploreRename {
		pairs = append(pairs, p[0], p[1])
	}
	return strings.NewReplacer(pairs...)
}

// TestExploreRenameInvariance runs the explorer on the case-analysis
// example and on an identifier-for-identifier rename of it (declaration
// order untouched), and requires the two Exploration reports to be
// identical up to the rename.
func TestExploreRenameInvariance(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "caseanalysis", "caseanalysis.scald"))
	if err != nil {
		t.Fatal(err)
	}
	r := renamer()

	explore := func(text string) []byte {
		t.Helper()
		res, err := VerifySource(text, Options{Explore: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Exploration == nil {
			t.Fatal("no Exploration in result")
		}
		if len(res.Exploration.Chosen) == 0 {
			t.Fatal("explorer chose no splits — the invariance check would be vacuous")
		}
		out, err := json.MarshalIndent(res.Exploration, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	orig := explore(string(src))
	renamed := explore(r.Replace(string(src)))
	if want := r.Replace(string(orig)); string(renamed) != want {
		t.Errorf("exploration is not rename-invariant\n--- renamed run ---\n%s\n--- original run, renamed ---\n%s",
			renamed, want)
	}
}

// TestExploreDeclaredCasesIdempotent checks a second metamorphic
// property: exploring a design that already declares the discovered
// split changes nothing — the explorer strips declared cases,
// rediscovers the same set, and the final verdict matches a plain
// verification of the declared design.
func TestExploreDeclaredCasesIdempotent(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("examples", "caseanalysis", "caseanalysis.scald"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	stripped := regexpCaseLines(text)

	resDeclared, err := VerifySource(text, Options{Explore: true})
	if err != nil {
		t.Fatal(err)
	}
	resStripped, err := VerifySource(stripped, Options{Explore: true})
	if err != nil {
		t.Fatal(err)
	}
	dj, err := json.Marshal(resDeclared.Exploration)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(resStripped.Exploration)
	if err != nil {
		t.Fatal(err)
	}
	if string(dj) != string(sj) {
		t.Errorf("exploration differs with and without the declared case lines\n--- declared ---\n%s\n--- stripped ---\n%s", dj, sj)
	}

	// And the explored verdict agrees with plainly verifying the
	// designer's declared cases.
	plain, err := VerifySource(text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(resDeclared.Violations), len(plain.Violations); got != want {
		t.Errorf("explored run reports %d violation(s), declared-case run %d", got, want)
	}
}

// regexpCaseLines removes the `case` specification lines from HDL text.
func regexpCaseLines(text string) string {
	var keep []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "case ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}
