package stats

import (
	"strings"
	"testing"
	"time"

	"scaldtv/internal/gen"
	"scaldtv/internal/verify"
)

func TestStorageModel(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 2 * gen.ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(d, verify.Options{KeepWaves: true})
	if err != nil {
		t.Fatal(err)
	}
	s := Measure(d, res.Cases[0].Waves)
	if s.Total() <= 0 {
		t.Fatal("zero storage")
	}
	if s.ValueLists != len(d.Nets) {
		t.Errorf("value lists = %d, want %d", s.ValueLists, len(d.Nets))
	}
	// Table 3-3 shape: the circuit description is the largest share
	// (paper: 37.8%), and every category is populated.
	if s.CircuitDescription <= s.SignalNames || s.CircuitDescription <= s.CallList {
		t.Errorf("circuit description should dominate: %+v", s)
	}
	for name, v := range map[string]int{
		"values": s.SignalValues, "names": s.SignalNames,
		"strings": s.StringSpace, "calllist": s.CallList, "misc": s.Misc,
	} {
		if v <= 0 {
			t.Errorf("category %s empty", name)
		}
	}
	// The paper's averages: ~3 value records and tens of bytes per signal.
	if avg := s.AvgValueRecords(); avg < 1 || avg > 10 {
		t.Errorf("avg value records = %.2f, implausible", avg)
	}
	if b := s.BytesPerSignal(); b < 20 || b > 200 {
		t.Errorf("bytes per signal = %.1f, implausible", b)
	}
	out := s.String()
	for _, want := range []string{"CIRCUIT DESCRIPTION", "SIGNAL VALUES", "CALL LIST", "TOTAL", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestStorageWithoutWaves(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: gen.ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	s := Measure(d, nil)
	if s.AvgValueRecords() != 3 {
		t.Errorf("estimate without waves = %.2f, want 3", s.AvgValueRecords())
	}
}

func TestTable31(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: gen.ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var t31 Table31
	t31.Read = 5 * time.Millisecond
	t31.Pass1 = time.Millisecond
	t31.Pass2 = 7 * time.Millisecond
	t31.FromVerify(res.Stats)
	if t31.Primitives != res.Stats.Primitives || t31.Events != res.Stats.Events {
		t.Errorf("FromVerify lost counters: %+v", t31)
	}
	if t31.PerEvent() <= 0 || t31.PerPrim() <= 0 {
		t.Errorf("per-unit costs should be positive: %v %v", t31.PerEvent(), t31.PerPrim())
	}
	out := t31.String()
	for _, want := range []string{"MACRO EXPANSION", "TIMING VERIFIER", "pass 2", "per event"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	var zero Table31
	if zero.PerPrim() != 0 || zero.PerEvent() != 0 {
		t.Error("zero table should not divide by zero")
	}
}

func TestTable31CacheCounters(t *testing.T) {
	d, _, err := gen.Generate(gen.Config{Chips: 2 * gen.ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Run(d, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var t31 Table31
	t31.FromVerify(res.Stats)
	if t31.CacheMisses == 0 || t31.Interned == 0 {
		t.Fatalf("default run should populate cache counters: %+v", t31)
	}
	if t31.CacheHits != res.Stats.CacheHits || t31.Deduped != res.Stats.Deduped {
		t.Errorf("FromVerify lost cache counters: %+v vs %+v", t31, res.Stats)
	}
	if r := t31.CacheHitRate(); r < 0 || r > 1 {
		t.Errorf("hit rate = %f, out of range", r)
	}
	out := t31.String()
	for _, want := range []string{"EVALUATION CACHE", "hit rate", "interned waveforms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	// With the cache disabled the section renders as off and the rate is 0.
	off, err := verify.Run(d, verify.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var t31off Table31
	t31off.FromVerify(off.Stats)
	if t31off.CacheHits != 0 || t31off.CacheMisses != 0 || t31off.Interned != 0 {
		t.Errorf("NoCache run reported cache activity: %+v", t31off)
	}
	if t31off.CacheHitRate() != 0 {
		t.Error("NoCache hit rate should be 0")
	}
	if out := t31off.String(); !strings.Contains(out, "off") {
		t.Errorf("NoCache rendering should say off:\n%s", out)
	}
}

func TestTable32(t *testing.T) {
	_, rep, err := gen.Generate(gen.Config{Chips: 2 * gen.ChipsPerStage()})
	if err != nil {
		t.Fatal(err)
	}
	out := Table32(rep, 2*gen.ChipsPerStage())
	for _, want := range []string{"TYPE", "COUNT", "vectored primitives", "primitives per chip", "synonyms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
