// Command scaldtvd serves the SCALD Timing Verifier over HTTP: stateless
// POST /v1/verify requests answer with the same JSON report bytes as
// `scaldtv -json`, POST /v1/explore runs automatic case exploration
// (the report carries the minimal case set discharging U/C-poisoned
// constraint sites, matching `scaldtv -explore -json` byte for byte),
// and stateful /v1/sessions retain a converged Verifier so that design
// edits are re-verified incrementally from the dirty cone.  See the
// package comment of internal/server for the endpoint and
// admission-control details.
//
// With -store the daemon persists converged runs in a content-addressed
// cache directory: repeated verify requests are answered from the store
// before the design is even compiled (the X-Scaldtv-Provenance header
// reports cached/warm/cold; the body bytes never change), sessions
// warm-start from the nearest persisted snapshot, and the cache
// survives restarts.
//
// On SIGTERM or SIGINT the daemon drains: new requests are refused with
// 503 while in-flight verifications run to completion (bounded by
// -drain), then the process exits 0.
//
// Cluster scale-out: with -worker the daemon additionally serves the
// batched sub-job endpoint POST /v1/batch (one case-analysis partition
// per ndjson line), making it an engine worker.  With
// -cluster host1:port,host2:port the daemon becomes a coordinator: it
// fans each verification's declared cases across the workers in batches,
// routes sessions to their owner worker by consistent hashing, retries
// partitions on surviving workers when one dies mid-batch, and merges
// the parts in declared case order — the distributed report is
// byte-identical to a local `scaldtv -json` run.  Tenants (the
// X-Scaldtv-Tenant header) get fair round-robin admission with
// per-tenant bounded queues (-tenant-queue) and per-tenant quota
// counters in /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"scaldtv"
	"scaldtv/internal/cluster"
	"scaldtv/internal/server"
	"scaldtv/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:7333", "listen address")
	workers := flag.Int("j", 1, "default case-evaluation workers per verification: 0 = one per CPU")
	intra := flag.Int("intra", 1, "default intra-case evaluation workers: >1 enables wavefront scheduling")
	cache := flag.Bool("cache", true, "memoize primitive evaluations over interned waveforms")
	tapeFlag := flag.Bool("tape", true, "compile designs to a flat evaluation tape with persistent memo tables")
	pool := flag.Int("pool", 0, "concurrent verifications (0 = sized against per-run parallelism)")
	queue := flag.Int("queue", 16, "admitted requests that may wait for a verification slot before 429")
	sessions := flag.Int("sessions", 64, "retained incremental sessions (LRU beyond this)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request verification deadline")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace for in-flight verifications")
	storeDir := flag.String("store", "", "persist converged runs in this content-addressed cache directory")
	storeMax := flag.Int64("store-max", 0, "store size budget in bytes (0 = the 256 MiB default)")
	workerMode := flag.Bool("worker", false, "serve the cluster batch endpoint POST /v1/batch next to the ordinary API")
	clusterList := flag.String("cluster", "", "coordinate over these comma-separated worker base URLs instead of verifying locally")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant waiting requests before 429 (0 = -queue)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, *storeMax); err != nil {
			fmt.Fprintf(os.Stderr, "scaldtvd: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := server.Config{
		Options:     scaldtv.Options{Workers: *workers, IntraWorkers: *intra, NoCache: !*cache, NoTape: !*tapeFlag},
		Pool:        *pool,
		Queue:       *queue,
		TenantQueue: *tenantQueue,
		MaxSessions: *sessions,
		SessionTTL:  *sessionTTL,
		Timeout:     *timeout,
		Store:       st,
	}
	if *clusterList != "" {
		if *workerMode {
			fmt.Fprintln(os.Stderr, "scaldtvd: -worker and -cluster are mutually exclusive")
			os.Exit(1)
		}
		var endpoints []string
		for _, ep := range strings.Split(*clusterList, ",") {
			ep = strings.TrimSpace(ep)
			if ep == "" {
				continue
			}
			if !strings.Contains(ep, "://") {
				ep = "http://" + ep
			}
			endpoints = append(endpoints, strings.TrimRight(ep, "/"))
		}
		if len(endpoints) == 0 {
			fmt.Fprintln(os.Stderr, "scaldtvd: -cluster needs at least one worker endpoint")
			os.Exit(1)
		}
		coord := cluster.NewCoordinator(cluster.CoordinatorConfig{Endpoints: endpoints})
		defer coord.Close()
		cfg.Cluster = coord
		log.Printf("scaldtvd: coordinating %d worker(s): %s", len(endpoints), strings.Join(endpoints, ", "))
	}
	var wk *cluster.Worker
	if *workerMode {
		wk = cluster.NewWorker(cluster.WorkerConfig{Store: st})
	}
	if err := run(*addr, cfg, wk, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "scaldtvd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, wk *cluster.Worker, drain time.Duration) error {
	s := server.New(cfg)
	handler := s.Handler()
	if wk != nil {
		// Worker mode: the batch endpoint rides next to the ordinary API
		// (the coordinator health-checks the shared /healthz, so draining
		// a worker steers batches away), with the worker's own counters
		// under /worker/metrics.
		outer := http.NewServeMux()
		outer.Handle("/v1/batch", wk.Handler())
		outer.Handle("/worker/", http.StripPrefix("/worker", wk.Handler()))
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The readiness line CI and scripts poll for (in addition to /healthz).
	log.Printf("scaldtvd: listening on http://%s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("scaldtvd: %v: draining (grace %v)", sig, drain)
		// Refuse new work first, then let in-flight verifications finish.
		s.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("scaldtvd: drained, exiting")
		return nil
	}
}
