// Package tape compiles an elaborated, levelized design once into a flat
// evaluation tape the verifier sweeps instead of re-deriving evaluation
// structure on every run.
//
// The tape is the classic interpreter-to-template lowering applied to the
// §2.9 relaxation: per primitive, an opcode dispatched through a jump
// table of evaluator func values (simple gates run on the packed
// seven-value truth tables of internal/values, everything else on the
// generic evaluator, checkers on a no-op); per topological level, a
// contiguous [start, end) span of component indices so the wavefront
// scheduler — and its IntraWorkers pool — partitions plain index ranges
// rather than walking nested level lists; per net, a preallocated initial
// waveform slot (the §2.9 step-1 seed, already interned) so a run seeds by
// copying handles instead of re-rendering assertions and re-hashing 80 000
// waveforms.
//
// A Program also owns the run-to-run persistent state: the waveform
// interner, the evaluation memo and the negative cache of clean constraint
// sites.  All three are keyed on exact live content (parameters, resolved
// directives, wire delays, interned input handles), so a parameter edit
// never needs an invalidation walk — stale entries are simply never hit —
// and a warm re-run of an unchanged design is served almost entirely from
// the tables.  Reports are bit-identical to the interpreter: the gate
// tables are segment-exact (values.CombineTableA), the sweep order is the
// confluent wavefront schedule, and the caches only ever return what
// evaluation would recompute.
//
// The Program hangs off the design's engine-cache slot
// (netlist.Design.EngineCache); structural edits clear it via
// RebuildFanout, numeric edits keep it and are caught by Refresh.
package tape

import (
	"sync"
	"sync/atomic"

	"scaldtv/internal/assertion"
	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/values"
)

// Opcode selects a primitive's evaluator in the Dispatch jump table.
type Opcode uint8

const (
	// OpChecker marks constraint checkers: never evaluated during
	// relaxation (the worklist excludes them), a no-op if dispatched.
	OpChecker Opcode = iota
	// OpTableGate marks simple gates evaluated through the packed
	// seven-value truth tables (eval.GateTableA).
	OpTableGate
	// OpGeneric marks everything else: muxes, storage, CHG — the generic
	// evaluator.
	OpGeneric

	numOpcodes
)

// EvalFunc is the signature of one jump-table entry, identical to the
// generic evaluator's.
type EvalFunc func(*netlist.Design, *netlist.Prim, eval.Getter, *values.Arena) ([]eval.Signal, error)

// Dispatch is the opcode jump table.  Indexing it with a Program's Ops
// entry is the tape's whole instruction decode.
var Dispatch = [numOpcodes]EvalFunc{
	OpChecker: func(*netlist.Design, *netlist.Prim, eval.Getter, *values.Arena) ([]eval.Signal, error) {
		return nil, nil
	},
	OpTableGate: eval.GateTableA,
	OpGeneric:   eval.PrimA,
}

// CheckPlan classifies what the checking phase (§2.9 step 3) must do at a
// primitive, decided once at compile time.
type CheckPlan uint8

const (
	// PlanNone: nothing can ever be checked here (single-input gates,
	// muxes without storage) — the checking sweep skips the site outright.
	PlanNone CheckPlan = iota
	// PlanSite: a checker primitive (set-up/hold, min-pulse).
	PlanSite
	// PlanDirective: a multi-input gate that may carry &A/&H stability
	// directives; a cheap head scan decides at run time whether any input
	// is actually marked.
	PlanDirective
	// PlanStorage: a storage element subject to the clock-defined rule.
	PlanStorage
)

// Seeds is the immutable §2.9 step-1 seed image of the design under one
// environment (period, skews, assertions, driver presence).  Refresh swaps
// the whole value atomically when the environment changes, so in-flight
// runs keep a consistent snapshot.
type Seeds struct {
	// Initial and InitialID hold each net's seed waveform and its interned
	// handle (from the Program's interner).  Verifiers share the slices
	// read-only and copy-on-write before any mutation.
	Initial   []values.Waveform
	InitialID []uint64
	// Pinned marks nets pinned to a clock assertion (§2.9).
	Pinned []bool
	// Undefined is the sorted cross-reference listing of undriven,
	// unasserted base names (§2.5).
	Undefined []string
	// AssertNets lists the nets the assertion cross-check must visit
	// (Assert != nil and driven), in ascending net order — the checking
	// phase iterates these instead of every net.
	AssertNets []netlist.NetID

	sig uint64 // envSig of the design state this image was built from
}

// Program is a design compiled to a flat evaluation tape plus the
// persistent evaluation state that outlives individual runs.  It holds no
// *Design: every method takes the design, so a Diff-equal edited design
// can adopt the same program.
//
// A Program is safe for concurrent use by any number of runs.
type Program struct {
	// Lev is the cached levelization the tape was compiled from.
	Lev *netlist.Levelization

	// Ops holds one opcode per primitive, indexed by PrimID.
	Ops []Opcode
	// Plans holds one checking plan per primitive, indexed by PrimID.
	Plans []CheckPlan

	// CompOrder lists the combinational component ids level-major
	// (ascending within a level); LevelSpan[i] is level i's [start, end)
	// index range into CompOrder.  The spans are what IntraWorkers
	// partitions: one level's pending components are a contiguous slice.
	CompOrder []int32
	LevelSpan [][2]int32

	// ConnNet and ConnDirs flatten every primitive's input connections in
	// evaluation-key order (ports outer, bits inner): the source net and
	// the pin's own directive override (empty when the incoming signal's
	// directives govern).  ConnSpan[pid] is the primitive's [start, end)
	// range.  The warm-slot match walks this struct-of-arrays table — a
	// tight scan over two parallel slices — instead of the netlist's
	// nested port structure.
	ConnNet  []netlist.NetID
	ConnDirs []assertion.Directives
	ConnSpan [][2]int32

	// Wired-OR driver tables, mirroring the verifier's construction:
	// drivers of each multiply-driven net in driver order, and the
	// deterministic slot of each (net, driver) pair.  Nil maps on designs
	// without wired-OR.
	Wired     map[netlist.NetID][]netlist.PrimID
	WiredSlot map[[2]int32]int

	// Persistent evaluation state.  Intern and Evals are the verifier's
	// usual interner and memo, owned here so they survive across runs;
	// Sites is the negative cache of constraint sites whose full check
	// produced no violations and no margins, keyed like the evaluation
	// memo plus the checker intervals.
	Intern *values.Interner
	Evals  *eval.Cache
	Sites  *NegCache

	// Scratch pools the verifier's per-run tables (one slot per net or
	// primitive — megabytes on large designs), so a warm run reuses the
	// previous run's allocations instead of clearing fresh ones.  The
	// pooled values are opaque to the tape; the verifier validates their
	// dimensions against the design before adopting them.
	Scratch sync.Pool

	mu    sync.Mutex // serializes Refresh rebuilds
	seeds atomic.Pointer[Seeds]
	slots atomic.Pointer[SlotTable]
}

// SlotInput identifies one input bit of a memoized evaluation as the
// evaluator sees it: the interned handle of the incoming waveform and the
// directive string governing the bit (the pin directives if present, else
// the signal's own).
type SlotInput struct {
	ID   uint64
	Dirs assertion.Directives
}

// SlotVar is one memoized evaluation: outputs keyed by the inputs they
// were computed from.  While the program's environment signature is
// unchanged (Refresh swaps the table otherwise), matching inputs imply a
// bit-identical evaluation.  For a checker primitive, Outs is nil and the
// variant records that the full constraint check of those inputs produced
// no violations.
type SlotVar struct {
	In   []SlotInput
	Outs []eval.Signal // interned outputs; nil for a clean checker site
	IDs  []uint64      // IDs[i] is the interned handle of Outs[i].Wave
}

// Slot is a primitive's warm slot: its last few distinct evaluations.
// Relaxation visits a primitive once per wavefront sweep with a short
// deterministic cycle of input states (seed-fed, then successively
// converged), so holding the last MaxSlotVars states makes a warm rerun
// hit on every sweep — no key building, hashing or locking — after a
// single warm-up run repopulates the cycle.  A Slot is immutable once
// published; publishing copies the surviving variants.
type Slot struct {
	Vars []SlotVar
}

// MaxSlotVars bounds the variants kept per slot; the oldest is evicted
// beyond it.  Relaxations needing more states per primitive fall back to
// the keyed memo, which has no horizon.
const MaxSlotVars = 4

// SlotTable holds one warm slot per primitive, indexed by PrimID.  Loads
// and stores are lock-free; a whole table is discarded when the design's
// environment signature changes, so in-flight runs holding the old table
// never see slots from a different parameter generation.
type SlotTable struct{ s []atomic.Pointer[Slot] }

// NewSlotTable returns an empty warm-slot table for n primitives.
func NewSlotTable(n int) *SlotTable { return &SlotTable{s: make([]atomic.Pointer[Slot], n)} }

// Load returns the primitive's current slot, or nil.
func (t *SlotTable) Load(pid netlist.PrimID) *Slot { return t.s[pid].Load() }

// Store publishes the primitive's slot (last writer wins).
func (t *SlotTable) Store(pid netlist.PrimID, sl *Slot) { t.s[pid].Store(sl) }

// Slots returns the current warm-slot table.  Callers capture it once per
// run: Refresh swaps in a fresh table when the environment changes, and a
// run must keep reading (and writing) the generation it validated.
func (p *Program) Slots() *SlotTable { return p.slots.Load() }

// For returns the design's compiled program, compiling and publishing it
// on first use.  The warm path is two atomic loads and a type assertion —
// no allocation — so every verification run can call it unconditionally.
// Concurrent first calls may both compile; either result is valid and one
// wins the (idempotent) publish.
func For(d *netlist.Design) (*Program, error) {
	if p, ok := d.EngineCache().(*Program); ok {
		return p, nil
	}
	p, err := Compile(d)
	if err != nil {
		return nil, err
	}
	d.StoreEngineCache(p)
	return p, nil
}

// Seeds returns the current seed image.
func (p *Program) Seeds() *Seeds { return p.seeds.Load() }

// Eval dispatches one primitive through the jump table.
func (p *Program) Eval(pid netlist.PrimID, d *netlist.Design, pr *netlist.Prim, get eval.Getter, a *values.Arena) ([]eval.Signal, error) {
	return Dispatch[p.Ops[pid]](d, pr, get, a)
}
