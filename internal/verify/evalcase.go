package verify

import (
	"fmt"

	"scaldtv/internal/netlist"
)

// EvalCase evaluates one extra case-analysis cycle against the session's
// retained converged state without disturbing it: a snapshot of the first
// retained case resumes from its fixed point and relaxes only the cone
// affected by the case mapping (§2.7), on the compiled tape when the
// session has one.  This is the probe primitive of the case-exploration
// engine (internal/explore): each candidate S→0/1 split costs one
// incremental relaxation instead of a full verification.
//
// The session must hold retained state from a converged Verify; a session
// whose last run failed to converge (or never ran) returns an error, as
// resuming from a non-fixed-point would not be a valid incremental base.
// The retained state itself is never mutated, so EvalCase may be called
// any number of times and interleaved with Reverify.
func (V *Verifier) EvalCase(c netlist.Case) (CaseResult, error) {
	if len(V.perCase) == 0 || V.perCase[0] == nil || V.res == nil {
		return CaseResult{}, fmt.Errorf("verify: EvalCase without retained state (run Verify first)")
	}
	for _, viol := range V.res.Violations {
		if viol.Kind == ConvergenceViolation {
			return CaseResult{}, fmt.Errorf("verify: EvalCase on a run that did not converge")
		}
	}
	w := V.perCase[0].snapshot()
	out := w.runCase(c, false)
	if out.err != nil {
		return CaseResult{}, out.err
	}
	w.releaseRunState()
	return out.cr, nil
}
