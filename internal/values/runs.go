package values

import (
	"scaldtv/internal/tick"
)

// Run is a maximal interval of a single value, with circular (wrap-aware)
// merging: if the waveform starts and ends the period with the same value,
// those segments form one run crossing the cycle boundary.  Start is taken
// modulo the period; Start+Width may exceed the period for the wrapping
// run.
type Run struct {
	Start tick.Time
	Width tick.Time
	V     Value
}

// End returns the (possibly unwrapped, i.e. > period) end of the run.
func (r Run) End() tick.Time { return r.Start + r.Width }

// Runs returns the circular runs of the waveform in time order of their
// starts.  A constant waveform yields a single run starting at 0.  The
// out-of-band skew is ignored: call IncorporateSkew first when transition
// placement uncertainty matters.
func (w Waveform) Runs() []Run {
	n := w.normalize()
	if v, ok := n.ConstantValue(); ok {
		return []Run{{Start: 0, Width: n.Period, V: v}}
	}
	segs := n.Segs
	var runs []Run
	var pos tick.Time
	for _, s := range segs {
		runs = append(runs, Run{Start: pos, Width: s.W, V: s.V})
		pos += s.W
	}
	// Wrap-merge: if first and last runs hold the same value they are one
	// circular run starting at the last run's start.
	if k := len(runs); k >= 2 && runs[0].V == runs[k-1].V {
		runs[k-1].Width += runs[0].Width
		runs = runs[1:]
	}
	return runs
}

// Transition records a value change at a single instant.
type Transition struct {
	At       tick.Time
	From, To Value
}

// Transitions returns every value change over the period, in time order.
// A constant waveform has none.
func (w Waveform) Transitions() []Transition {
	runs := w.Runs()
	if len(runs) < 2 {
		return nil
	}
	out := make([]Transition, 0, len(runs))
	for i, r := range runs {
		prev := runs[(i+len(runs)-1)%len(runs)]
		out = append(out, Transition{At: tick.Mod(r.Start, w.Period), From: prev.V, To: r.V})
	}
	// Runs are already start-ordered except that the wrapped run sorts by
	// its (mod-period) start; re-sort defensively.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Edge is a window within which a clock transition may occur.  For a crisp
// transition Start == End; for a transition carried in a RISE/FALL/CHANGE
// band the window spans the band.  End may exceed the period for a band
// crossing the cycle boundary.
type Edge struct {
	Start, End tick.Time
}

// RisingEdges returns the windows in which the signal may transition from
// low to high, operating on the skew-incorporated waveform.  They comprise
// RISE bands, direct 0→1 (or stable→1) transitions, and — conservatively —
// CHANGE bands, within which a rising edge cannot be ruled out.  UNKNOWN
// regions contribute no edges; the verifier reports clocks with undefined
// values separately.
func (w Waveform) RisingEdges() []Edge {
	return w.edges(VR, V1)
}

// FallingEdges is the mirror image of RisingEdges for high-to-low
// transitions.
func (w Waveform) FallingEdges() []Edge {
	return w.edges(VF, V0)
}

func (w Waveform) edges(band, target Value) []Edge {
	inc := w.IncorporateSkew()
	runs := inc.Runs()
	if len(runs) < 2 {
		return nil
	}
	var out []Edge
	for i, r := range runs {
		prev := runs[(i+len(runs)-1)%len(runs)]
		switch r.V {
		case band, VC:
			out = append(out, Edge{Start: tick.Mod(r.Start, inc.Period), End: tick.Mod(r.Start, inc.Period) + r.Width})
		case target:
			// Direct transition into the target level.  A preceding band
			// run already covers the transition window.
			if prev.V != band && prev.V != VC && prev.V != VU && prev.V != target {
				t := tick.Mod(r.Start, inc.Period)
				out = append(out, Edge{Start: t, End: t})
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// constFlip reports whether crossing from value a to value b is a physical
// level change: both are logic constants and they differ.  (A STABLE run
// resolving into a known constant is representational, not physical — the
// signal may have held that constant all along.)
func constFlip(a, b Value) bool {
	return a.Const() && b.Const() && a != b
}

// StableBack returns how far stability extends backwards from instant t:
// the largest d ≤ period such that the value over [t-d, t) is everywhere
// stable (0, 1 or STABLE) with no crisp 0↔1 level change inside.  A fully
// stable waveform returns the period.
func (w Waveform) StableBack(t tick.Time) tick.Time {
	inc := w.IncorporateSkew()
	t = tick.Mod(t, inc.Period)
	var d tick.Time
	var prev Value
	first := true
	for d < inc.Period {
		r := inc.runContaining(tick.Mod(t-d-1, inc.Period))
		if !r.V.Stable() {
			break
		}
		if !first && constFlip(r.V, prev) {
			break
		}
		ext := tick.Mod(t-d, inc.Period) - r.Start
		if ext <= 0 {
			ext += inc.Period
		}
		d += ext
		prev, first = r.V, false
	}
	return min(d, inc.Period)
}

// StableFwd returns how far stability extends forwards from instant t: the
// largest d ≤ period such that the value over [t, t+d) is everywhere
// stable with no crisp 0↔1 level change inside.
func (w Waveform) StableFwd(t tick.Time) tick.Time {
	inc := w.IncorporateSkew()
	t = tick.Mod(t, inc.Period)
	var d tick.Time
	var prev Value
	first := true
	for d < inc.Period {
		r := inc.runContaining(tick.Mod(t+d, inc.Period))
		if !r.V.Stable() {
			break
		}
		if !first && constFlip(prev, r.V) {
			break
		}
		ext := r.End() - tick.Mod(t+d, inc.Period)
		d += ext
		prev, first = r.V, false
	}
	return min(d, inc.Period)
}

// runContaining returns the circular run containing instant t ∈ [0, period).
func (w Waveform) runContaining(t tick.Time) Run {
	runs := w.Runs()
	for _, r := range runs {
		if t >= r.Start && t < r.End() {
			return r
		}
		// The wrapping run also covers [0, End-period).
		if r.End() > w.Period && t < r.End()-w.Period {
			return Run{Start: r.Start - w.Period, Width: r.Width, V: r.V}
		}
	}
	return runs[len(runs)-1]
}

// StableThroughout reports whether the value is stable at every instant of
// [start, end) with no crisp 0↔1 level change inside — a window of length
// ≤ period that may wrap the cycle boundary.  An empty window is trivially
// stable.
func (w Waveform) StableThroughout(start, end tick.Time) bool {
	length := end - start
	if length <= 0 {
		return true
	}
	if length >= w.Period {
		length = w.Period
	}
	inc := w.IncorporateSkew()
	s := tick.Mod(start, inc.Period)
	var covered tick.Time
	var prev Value
	first := true
	for covered < length {
		r := inc.runContaining(tick.Mod(s+covered, inc.Period))
		if !r.V.Stable() {
			return false
		}
		if !first && constFlip(prev, r.V) {
			return false
		}
		ext := r.End() - tick.Mod(s+covered, inc.Period)
		if ext <= 0 {
			ext += inc.Period
		}
		covered += ext
		prev, first = r.V, false
	}
	return true
}

// Activity reduces a waveform to its change behaviour: UNKNOWN where the
// signal is undefined, CHANGE where it may be changing — including
// picosecond markers at crisp 0↔1 level flips, which are physical changes
// even though both levels are stable values — and STABLE elsewhere.  It is
// the input transformation for the CHANGE function and for multiplexer
// select aggregation.
func (w Waveform) Activity() Waveform {
	out := w.MapUnary(func(v Value) Value {
		switch {
		case v == VU:
			return VU
		case v.Changing():
			return VC
		}
		return VS
	})
	for _, tr := range w.Transitions() {
		if constFlip(tr.From, tr.To) {
			out = out.Paint(tr.At, tr.At+1, VC)
		}
	}
	return out
}

// Pulse describes one possible pulse of a waveform at a given polarity.
// MinWidth is the guaranteed (worst-case narrowest) width; MaxWidth the
// widest possible extent including transition bands.
type Pulse struct {
	Start    tick.Time // start of the earliest possible leading edge
	MinWidth tick.Time
	MaxWidth tick.Time
}

// HighPulses analyses the waveform for distinct intervals during which the
// signal may be high: maximal circular groups of 1, RISE, FALL and CHANGE
// runs.  The guaranteed width of a pulse is its longest contiguous solid-1
// stretch — the leading edge may occur as late as the end of its RISE band
// and the trailing edge as early as the start of its FALL band.  A group
// with no solid-1 run (Fig 1-5's gated-clock hazard) has MinWidth 0: the
// pulse may be arbitrarily narrow.  A waveform that is high (or stable) for
// the whole period has no pulses.
//
// Out-of-band skew is deliberately *ignored*: a pure delay shifts both
// edges of a pulse by the same amount, so its width is unchanged.  This is
// precisely why the Verifier carries skew separately — to avoid incorrectly
// asserting that minimum pulse width requirements have not been met (§2.8).
func (w Waveform) HighPulses() []Pulse { return w.pulses(V1, V0) }

// LowPulses is the mirror image of HighPulses for low-going pulses.
func (w Waveform) LowPulses() []Pulse { return w.pulses(V0, V1) }

func (w Waveform) pulses(level, rest Value) []Pulse {
	inc := w.normalize()
	runs := inc.Runs()
	if len(runs) < 2 {
		return nil
	}
	inGroup := func(v Value) bool {
		return v == level || v == VR || v == VF || v == VC
	}
	// Find a starting index at a non-group run so circular groups are not
	// split across the scan origin.
	start := -1
	for i, r := range runs {
		if !inGroup(r.V) {
			start = i
			break
		}
	}
	if start == -1 {
		return nil // never definitively at rest: no distinct pulses
	}
	// Rotate the circular run list so a non-group run comes first; every
	// group is then a contiguous stretch of the linear slice.
	n := len(runs)
	rot := make([]Run, 0, n)
	for k := 0; k < n; k++ {
		rot = append(rot, runs[(start+k)%n])
	}
	var out []Pulse
	for i := 0; i < n; {
		if !inGroup(rot[i].V) {
			i++
			continue
		}
		j := i
		for j < n && inGroup(rot[j].V) {
			j++
		}
		group := rot[i:j]
		var maxw, solid, best tick.Time
		for _, g := range group {
			maxw += g.Width
			if g.V == level {
				solid += g.Width
				best = max(best, solid)
			} else {
				solid = 0
			}
		}
		out = append(out, Pulse{
			Start:    tick.Mod(group[0].Start, inc.Period),
			MinWidth: best,
			MaxWidth: maxw,
		})
		i = j
	}
	return out
}
