package netlist

import (
	"strings"
	"testing"

	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

func TestKindPredicates(t *testing.T) {
	if !KOr.IsGate() || KReg.IsGate() || KMux2.IsGate() {
		t.Error("IsGate wrong")
	}
	if !KReg.IsStorage() || !KLatchRS.IsStorage() || KOr.IsStorage() {
		t.Error("IsStorage wrong")
	}
	if !KSetupHold.IsChecker() || !KMinPulse.IsChecker() || KReg.IsChecker() {
		t.Error("IsChecker wrong")
	}
	if KMux2.NumSelects() != 1 || KMux4.NumSelects() != 2 || KMux8.NumSelects() != 3 || KOr.NumSelects() != 0 {
		t.Error("NumSelects wrong")
	}
	if KMux2.NumMuxData() != 2 || KMux8.NumMuxData() != 8 {
		t.Error("NumMuxData wrong")
	}
	if KSetupHold.String() != "SETUP HOLD CHK" || KMux2.String() != "2 MUX" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestBuilderSmallCircuit(t *testing.T) {
	b := NewBuilder("smoke")
	b.SetPeriod(50 * tick.NS)
	ck := b.Net("CK .P2-3")
	d := b.Vector("DATA .S0-6", 4)
	q := b.Vector("Q", 4)
	b.Register("reg1", tick.R(1.5, 4.5), q, Conn{Net: ck}, Conns(d...))
	b.SetupHold("reg1 chk", tick.FromNS(2.5), tick.FromNS(1.5), Conns(d...), Conn{Net: ck})
	des, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(des.Nets) != 9 {
		t.Errorf("net count = %d, want 9", len(des.Nets))
	}
	if len(des.Prims) != 2 {
		t.Errorf("prim count = %d, want 2", len(des.Prims))
	}
	// Fanout: CK feeds both the register and the checker.
	if got := len(des.Nets[ck].Fanout); got != 2 {
		t.Errorf("CK fanout = %d, want 2", got)
	}
	// Driver: each Q bit driven by the register.
	if des.Nets[q[0]].Driver != 0 {
		t.Errorf("Q<0> driver = %d", des.Nets[q[0]].Driver)
	}
	if des.Nets[ck].Driver != NoDriver {
		t.Error("CK should be undriven")
	}
	// Assertion parsed onto the net.
	if des.Nets[ck].Assert == nil || des.Nets[d[0]].Assert == nil {
		t.Error("assertions not attached")
	}
	if des.Nets[d[2]].Base != "DATA<2>" {
		t.Errorf("vector bit base = %q", des.Nets[d[2]].Base)
	}
}

func TestBuilderNetDeduplication(t *testing.T) {
	b := NewBuilder("dedupe")
	b.SetPeriod(50 * tick.NS)
	a := b.Net("X .S0-4")
	c := b.Net("X .S0-4")
	if a != c {
		t.Error("same name produced two nets")
	}
	v1 := b.Vector("V .S0-4", 3)
	v2 := b.Vector("V .S0-4", 3)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Error("vector bits not deduplicated")
		}
	}
}

func TestBuilderBroadcast(t *testing.T) {
	b := NewBuilder("bcast")
	b.SetPeriod(50 * tick.NS)
	en := b.Net("EN .S0-8")
	d := b.Vector("D .S0-6", 8)
	q := b.Vector("Q", 8)
	b.Gate(KAnd, "and1", tick.R(1, 2), q, Conns(d...), Conns(en))
	des, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := des.Prims[0]
	if len(p.In[1].Bits) != 8 {
		t.Errorf("broadcast port width = %d, want 8", len(p.In[1].Bits))
	}
	for _, c := range p.In[1].Bits {
		if c.Net != en {
			t.Error("broadcast bits differ")
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"no period", func(b *Builder) { b.Net("X") }, "no clock period"},
		{"bad period", func(b *Builder) { b.SetPeriod(0) }, "non-positive period"},
		{"bad clock unit", func(b *Builder) { b.SetPeriod(50).SetClockUnit(0) }, "non-positive clock unit"},
		{"bad assertion", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			b.Net("X .C(1,2")
		}, "assertion"},
		{"gate with mux kind", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			b.Gate(KMux2, "g", tick.Range{}, []NetID{b.Net("O")}, Conns(b.Net("A")))
		}, "non-gate kind"},
		{"mux select count", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			o, s, d0, d1 := b.Net("O"), b.Net("S"), b.Net("D0"), b.Net("D1")
			b.Mux(KMux2, "m", tick.Range{}, tick.Range{}, []NetID{o},
				Conns(s, s), Conns(d0), Conns(d1))
		}, "select bits"},
		{"mux data count", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			o, s, d0 := b.Net("O"), b.Net("S"), b.Net("D0")
			b.Mux(KMux2, "m", tick.Range{}, tick.Range{}, []NetID{o}, Conns(s), Conns(d0))
		}, "data inputs"},
		{"port width mismatch", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			q := b.Vector("Q", 4)
			d := b.Vector("D", 3)
			b.Register("r", tick.Range{}, q, Conn{Net: b.Net("CK")}, Conns(d...))
		}, "want 4"},
		{"double driver", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			o := b.Net("O")
			a := b.Net("A")
			b.Buf("b1", tick.Range{}, []NetID{o}, Conns(a))
			b.Buf("b2", tick.Range{}, []NetID{o}, Conns(a))
		}, "driven by both"},
		{"conflicting assertions", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			// Same base name, different assertions: two distinct nets whose
			// Base collides.
			b.Net("X .S0-4")
			b.Net("X .S0-5")
		}, "conflicting assertions"},
		{"bad directive", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			b.Directive("Q", Conns(b.Net("A")))
		}, "invalid evaluation directive"},
		{"bad case value", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			b.AddCase("c", Assign("X", values.VS))
		}, "not a logic constant"},
		{"bad wire", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			b.SetWire(tick.Range{Min: 2, Max: 1}, b.Net("A"))
		}, "invalid wire delay"},
		{"zero-width vector", func(b *Builder) {
			b.SetPeriod(50 * tick.NS)
			b.Vector("V", 0)
		}, "non-positive width"},
	}
	for _, c := range cases {
		b := NewBuilder(c.name)
		c.build(b)
		_, err := b.Build()
		if err == nil {
			t.Errorf("%s: Build succeeded, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewBuilder("x").MustBuild() // no period
}

func TestWireDelay(t *testing.T) {
	b := NewBuilder("wires")
	b.SetPeriod(50 * tick.NS)
	b.SetDefaultWire(tick.R(0, 2))
	a := b.Net("ADR")
	x := b.Net("X")
	b.SetWire(tick.R(0, 6), a)
	des := b.MustBuild()

	if got := des.WireDelay(a, 'E'); got != tick.R(0, 6) {
		t.Errorf("override wire = %v", got)
	}
	if got := des.WireDelay(x, 'E'); got != tick.R(0, 2) {
		t.Errorf("default wire = %v", got)
	}
	// W and Z directives zero the wire.
	if got := des.WireDelay(a, 'W'); !got.IsZero() {
		t.Errorf("W-directive wire = %v, want zero", got)
	}
	if got := des.WireDelay(a, 'H'); !got.IsZero() {
		t.Errorf("H-directive wire = %v, want zero", got)
	}
}

func TestInvertHelper(t *testing.T) {
	cs := Conns(1, 2)
	inv := Invert(cs)
	if !inv[0].Invert || !inv[1].Invert {
		t.Error("Invert did not set flags")
	}
	if cs[0].Invert {
		t.Error("Invert mutated its argument")
	}
	if back := Invert(inv); back[0].Invert {
		t.Error("double inversion should cancel")
	}
}

func TestEnvDefaults(t *testing.T) {
	b := NewBuilder("env")
	b.SetPeriod(50 * tick.NS).SetClockUnit(tick.FromNS(6.25))
	des := b.MustBuild()
	env := des.Env()
	if env.ClockUnit != tick.FromNS(6.25) || env.Period != 50*tick.NS {
		t.Errorf("env = %+v", env)
	}
	// Zero clock unit falls back to 1 ns.
	d2 := &Design{Period: 50 * tick.NS}
	if d2.Env().ClockUnit != tick.NS {
		t.Error("fallback clock unit wrong")
	}
}

func TestNetByName(t *testing.T) {
	b := NewBuilder("names")
	b.SetPeriod(50 * tick.NS)
	id := b.Net("FOO .S0-4")
	des := b.MustBuild()
	if got, ok := des.NetByName("FOO .S0-4"); !ok || got != id {
		t.Error("NetByName lookup failed")
	}
	if _, ok := des.NetByName("BAR"); ok {
		t.Error("phantom net found")
	}
}

func TestCheckerShapes(t *testing.T) {
	b := NewBuilder("checkers")
	b.SetPeriod(50 * tick.NS)
	in := b.Vector("I .S0-4", 4)
	ck := b.Net("CK .P2-3")
	b.SetupHold("sh", 2500, 1500, Conns(in...), Conn{Net: ck})
	b.SetupRiseHoldFall("srhf", 3500, 1000, Conns(in...), Conn{Net: ck})
	b.MinPulse("mp", 5000, 3000, Conn{Net: ck})
	des, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if des.Prims[0].Setup != 2500 || des.Prims[1].Setup != 3500 || des.Prims[2].MinHigh != 5000 {
		t.Error("checker parameters lost")
	}
}

func TestNewNet(t *testing.T) {
	b := NewBuilder("newnet")
	b.SetPeriod(50 * tick.NS)
	b.Net("EXISTING")
	d := b.MustBuild()
	id, err := d.NewNet("FRESH", "FRESH")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d.NetByName("FRESH"); !ok || got != id {
		t.Error("NewNet not indexed")
	}
	if _, err := d.NewNet("EXISTING", "EXISTING"); err == nil {
		t.Error("duplicate NewNet accepted")
	}
}

func TestDrivers(t *testing.T) {
	b := NewBuilder("drivers")
	b.SetPeriod(50 * tick.NS)
	b.SetWiredOr(true)
	bus := b.Net("BUS")
	a := b.Net("A .S0-25")
	b.Buf("D1", tick.Range{}, []NetID{bus}, Conns(a))
	b.Buf("D2", tick.Range{}, []NetID{bus}, Conns(a))
	d := b.MustBuild()
	if got := d.Drivers(bus); len(got) != 2 {
		t.Errorf("Drivers = %v", got)
	}
	if got := d.Drivers(a); len(got) != 0 {
		t.Errorf("input net has drivers: %v", got)
	}
}

func TestRFDelayValidation(t *testing.T) {
	b := NewBuilder("rf")
	b.SetPeriod(50 * tick.NS)
	o, a := b.Net("O"), b.Net("A .S0-25")
	b.GateRF(KBuf, "B", tick.Range{Min: 3, Max: 1}, tick.R(1, 2), []NetID{o}, Conns(a))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "rise/fall") {
		t.Errorf("invalid RF range accepted: %v", err)
	}
	// RF on storage is rejected.
	b2 := NewBuilder("rf2")
	b2.SetPeriod(50 * tick.NS)
	q := b2.Net("Q")
	ck := b2.Net("CK .P20-30")
	pid := b2.Register("R", tick.R(1, 2), []NetID{q}, Conn{Net: ck}, Conns(b2.Net("D .S0-25")))
	d2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	d2.Prims[pid].RF = &RFDelay{Rise: tick.R(1, 2), Fall: tick.R(1, 2)}
	if err := d2.Check(); err == nil || !strings.Contains(err.Error(), "cannot carry") {
		t.Errorf("RF on storage accepted: %v", err)
	}
}

func TestRFEnvelope(t *testing.T) {
	rf := RFDelay{Rise: tick.R(2, 3), Fall: tick.R(5, 7)}
	if env := rf.Envelope(); env != (tick.Range{Min: 2000, Max: 7000}) {
		t.Errorf("envelope = %v", env)
	}
}

func TestStorageBuilders(t *testing.T) {
	b := NewBuilder("storage")
	b.SetPeriod(50 * tick.NS)
	b.SetPrecisionSkew(tick.R(-1, 1))
	b.SetClockSkew(tick.R(-5, 5))
	ck := b.Net("CK .P20-30")
	set, rst := b.Net("SET .S0-50"), b.Net("RST .S0-50")
	d := b.Vector("D .S0-30", 4)
	q1, q2, q3 := b.Vector("Q1", 4), b.Vector("Q2", 4), b.Vector("Q3", 4)
	b.RegisterRS("rrs", tick.R(1, 2), q1, Conn{Net: ck}, ConnsOf(d), Conn{Net: set}, Conn{Net: rst})
	b.Latch("lat", tick.R(1, 2), q2, Conn{Net: ck}, ConnsOf(d))
	b.LatchRS("lrs", tick.R(1, 2), q3, Conn{Net: ck}, ConnsOf(d), Conn{Net: set}, Conn{Net: rst})
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	des := b.MustBuild()
	if des.Prims[0].Kind != KRegRS || des.Prims[1].Kind != KLatch || des.Prims[2].Kind != KLatchRS {
		t.Errorf("kinds wrong: %v %v %v", des.Prims[0].Kind, des.Prims[1].Kind, des.Prims[2].Kind)
	}
	if des.PrecisionSkew != tick.R(-1, 1) || des.ClockSkew != tick.R(-5, 5) {
		t.Error("skew setters lost")
	}
}

func TestBaseMatchesAndNetsByBase(t *testing.T) {
	if !BaseMatches("ADR<3>", "ADR") || !BaseMatches("ADR", "ADR") {
		t.Error("BaseMatches false negative")
	}
	if BaseMatches("ADDR<3>", "ADR") || BaseMatches("ADR3", "ADR") || BaseMatches("ADR<3", "ADR") {
		t.Error("BaseMatches false positive")
	}
	b := NewBuilder("bybase")
	b.SetPeriod(50 * tick.NS)
	v := b.Vector("BUS .S0-25", 4)
	b.Net("OTHER")
	des := b.MustBuild()
	got := des.NetsByBase("BUS")
	if len(got) != 4 || got[0] != v[0] {
		t.Errorf("NetsByBase = %v", got)
	}
	if ids := b.NetsByBase("BUS"); len(ids) != 4 {
		t.Errorf("builder NetsByBase = %v", ids)
	}
}
