// Command scaldtv is the SCALD Timing Verifier driver: it reads a design
// in the textual SCALD-like HDL, expands its macros, verifies every timing
// constraint, and prints the error, summary and cross-reference listings.
//
// Usage:
//
//	scaldtv [flags] design.scald
//
//	-lib          make the Chapter-3 component library available
//	-summary      print the Fig 3-10 timing summary listing
//	-xref         print the cross-reference listing of undefined signals
//	-stats        print execution and storage statistics
//	-case n       print the summary for case n (default 0)
//	-explore      discover the minimal case set that discharges U/C-poisoned
//	              constraint sites (automatic case exploration); declared
//	              cases are rediscovered, not required
//	-delays m     delay model: worstcase (default), statistical or
//	              analytic — the statistical model reports a violation
//	              probability per constraint site via deterministic
//	              quadrature; the analytic model evaluates parameterized
//	              delay expressions at a point and reports each site's
//	              margin surface over the declared parameter box
//	-param n=v    bind design parameter n to value v for the analytic
//	              model (repeatable; implies -delays=analytic)
//	-j n          case-evaluation workers (0 = one per CPU, 1 = sequential)
//	-intra n      intra-case evaluation workers (1 = the serial worklist;
//	              >1 = levelized wavefront scheduling, bit-identical reports)
//	-cache        memoize primitive evaluations (default true; -cache=false
//	              disables the cache, results are bit-identical either way)
//	-watch        stay running and re-verify on every save; parameter-only
//	              edits reverify just the dirty cone incrementally
//	-store dir    persist converged runs in a content-addressed cache:
//	              already-seen designs answer without running the engine,
//	              edited designs warm-start from the nearest snapshot
//	-cpuprofile f write a CPU profile of the verification to f
//	-memprofile f write an allocation profile (after verification) to f
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"scaldtv"
	"scaldtv/internal/sections"
	"scaldtv/internal/stats"
	"scaldtv/internal/store"
)

// main only converts run's exit code into os.Exit, so the profiling defers
// inside run always flush before the process dies.
func main() {
	os.Exit(run())
}

func run() int {
	lib := flag.Bool("lib", false, "make the component library available")
	summary := flag.Bool("summary", false, "print the timing summary listing")
	xref := flag.Bool("xref", false, "print the cross-reference listing")
	statsFlag := flag.Bool("stats", false, "print execution and storage statistics")
	caseIdx := flag.Int("case", 0, "case index for the timing summary")
	exploreFlag := flag.Bool("explore", false, "discover the minimal case set discharging U/C-poisoned constraint sites")
	delaysFlag := flag.String("delays", "", "delay model: worstcase (default), statistical or analytic")
	params := map[string]float64{}
	flag.Func("param", "bind design parameter name=value for the analytic model (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		params[name] = v
		return nil
	})
	autoCorr := flag.Bool("autocorr", false, "automatically insert CORR delays into register feedback paths (§4.2.3)")
	art := flag.Bool("art", false, "print ASCII timing diagrams")
	artWidth := flag.Int("artwidth", 64, "timing diagram width in columns")
	lintFlag := flag.Bool("lint", false, "run the structural design-rule checks")
	jsonFlag := flag.Bool("json", false, "emit the result as JSON (suppresses the listings)")
	dotFlag := flag.Bool("dot", false, "emit the design as a Graphviz digraph and exit")
	slack := flag.Int("slack", 0, "print the N most critical constraint margins with a cycle-time estimate")
	minPeriod := flag.Bool("minperiod", false, "bisect for the shortest clean clock period (§1.1) and exit")
	sectionsFlag := flag.Bool("sections", false, "verify each file as an independent section and cross-check interface assertions (§2.5.2)")
	workers := flag.Int("j", 0, "case-evaluation workers: 0 = one per CPU, 1 = sequential with incremental cone reuse")
	intra := flag.Int("intra", 1, "intra-case evaluation workers: >1 enables levelized wavefront scheduling (reports are bit-identical)")
	cache := flag.Bool("cache", true, "memoize primitive evaluations over interned waveforms (-cache=false disables)")
	tapeFlag := flag.Bool("tape", true, "compile the design to a flat evaluation tape with persistent memo tables (-tape=false selects the interpreter)")
	watchFlag := flag.Bool("watch", false, "re-verify on every save, reusing converged waveforms for parameter-only edits")
	storeDir := flag.String("store", "", "persist converged runs in this content-addressed cache directory")
	storeMax := flag.Int64("store-max", 0, "store size budget in bytes (0 = the 256 MiB default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after verification to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "scaldtv:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the retained-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "scaldtv:", err)
			}
		}()
	}
	delays, err := scaldtv.ParseDelayModel(*delaysFlag)
	if err != nil {
		return fail(err)
	}
	if len(params) > 0 {
		if !scaldtv.IsWorstCase(delays) && *delaysFlag != "analytic" {
			return fail(fmt.Errorf("-param requires the analytic delay model, not -delays=%s", *delaysFlag))
		}
		delays = scaldtv.AnalyticDelays{Params: params}
	}
	baseOpts := scaldtv.Options{Workers: *workers, IntraWorkers: *intra, NoCache: !*cache,
		NoTape: !*tapeFlag, Explore: *exploreFlag, Delays: delays}
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, *storeMax); err != nil {
			return fail(err)
		}
	}

	if *sectionsFlag {
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "usage: scaldtv -sections a.scald b.scald ...")
			return 2
		}
		srcs := map[string]string{}
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				return fail(err)
			}
			text := string(data)
			if *lib {
				text += "\n" + scaldtv.Library
			}
			srcs[path] = text
		}
		rep, err := sections.Verify(srcs, baseOpts)
		if err != nil {
			return fail(err)
		}
		fmt.Print(rep.String())
		if !rep.Clean() {
			return 1
		}
		return 0
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: scaldtv [flags] design.scald")
		flag.PrintDefaults()
		return 2
	}
	if *watchFlag {
		if err := watch(flag.Arg(0), *lib, baseOpts, st, os.Stdout, 200*time.Millisecond, 0); err != nil {
			return fail(err)
		}
		return 0
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return fail(err)
	}
	text := string(src)
	if *lib {
		text = text + "\n" + scaldtv.Library
	}
	design, rep, err := scaldtv.CompileWithReport(text)
	if err != nil {
		return fail(err)
	}
	if *autoCorr {
		ins, err := scaldtv.AutoCorr(design)
		if err != nil {
			return fail(err)
		}
		for _, in := range ins {
			fmt.Printf("autocorr: inserted %s ns fictitious delay into feedback of %s (via %s)\n",
				in.Delay, in.Storage, in.Via)
		}
	}
	if *dotFlag {
		fmt.Print(scaldtv.DOT(design))
		return 0
	}
	if *minPeriod {
		hi := design.Period * 4
		min, err := scaldtv.MinimumPeriod(text, scaldtv.NS(0.5), hi, scaldtv.NS(0.25))
		if err != nil {
			return fail(err)
		}
		if min == 0 {
			fmt.Printf("no clean period found up to %s ns\n", hi)
			return 1
		}
		fmt.Printf("minimum clean clock period: %s ns (declared: %s ns)\n", min, design.Period)
		return 0
	}
	opts := baseOpts
	opts.KeepWaves = *summary || *art
	opts.Margins = *slack > 0
	var res *scaldtv.Result
	if st != nil && (opts.Explore || !scaldtv.IsWorstCase(opts.Delays)) {
		// Restored snapshots cannot carry the exploration, statistical or
		// margin-surface sections, so these modes always run the engine
		// directly.
		fmt.Fprintln(os.Stderr, "scaldtv: store: bypassed (-explore/-delays run the engine directly)")
		st = nil
	}
	if st != nil {
		// Store-mediated run: an already-seen design answers from its
		// persisted fixed point, an edited one warm-starts from the
		// nearest snapshot.  Reports stay byte-identical to a cold run;
		// provenance goes to stderr so stdout does not change shape.
		oc, err := store.Verify(context.Background(), st, design, text, opts, true)
		if err != nil {
			return fail(err)
		}
		res = oc.Res
		fmt.Fprintf(os.Stderr, "scaldtv: store: %s\n", oc.Provenance)
	} else if res, err = scaldtv.Verify(design, opts); err != nil {
		return fail(err)
	}

	if *jsonFlag {
		out, err := scaldtv.JSONReport(res)
		if err != nil {
			return fail(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		if res.Errors() {
			return 1
		}
		return 0
	}

	if *lintFlag {
		findings := scaldtv.Lint(design)
		fmt.Printf("DESIGN RULE CHECKS: %d finding(s)\n", len(findings))
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
		fmt.Println()
	}

	fmt.Print(scaldtv.Summary(res))
	fmt.Println()
	fmt.Print(scaldtv.ErrorListing(res))
	if *exploreFlag {
		fmt.Println()
		fmt.Print(scaldtv.ExploreListing(res))
	}
	if len(res.SiteProbs) > 0 {
		fmt.Println()
		fmt.Print(scaldtv.StatListing(res))
	}
	if res.MarginSurface != nil {
		fmt.Println()
		fmt.Print(scaldtv.SurfaceListing(res))
	}
	if *xref {
		fmt.Println()
		fmt.Print(scaldtv.CrossReference(res))
	}
	if *summary {
		fmt.Println()
		fmt.Print(scaldtv.TimingSummary(res, *caseIdx))
	}
	if *art {
		fmt.Println()
		fmt.Print(scaldtv.WaveArt(res, *caseIdx, *artWidth))
	}
	if *slack > 0 {
		fmt.Println()
		fmt.Print(scaldtv.SlackListing(res, *slack))
	}
	if *statsFlag {
		fmt.Println()
		var t31 stats.Table31
		t31.FromVerify(res.Stats)
		fmt.Print(t31.String())
		fmt.Println()
		fmt.Print(stats.Table32(rep, 0))
		fmt.Println()
		fmt.Print(rep.SummaryListing())
		fmt.Println()
		fmt.Print(stats.Measure(design, nil).String())
	}
	if res.Errors() {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "scaldtv:", err)
	return 2
}
