package tick

import (
	"fmt"
	"strings"
	"testing"
)

// TestParseEdgeCases drives Parse through the boundaries the grammar
// tests leave out: negative durations with every unit, values near the
// int64-picosecond limit in both directions, and non-finite input.
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want Time
		ok   bool
	}{
		// Negative durations with explicit units.
		{"-10ps", -10, true},
		{"-2.5ns", -2500, true},
		{"-1us", -1000000, true},
		{"-1.5ms", -1500000000, true},
		{"-0", 0, true},
		{"-0.0004", 0, true}, // rounds to zero, sign preserved away

		// Near the int64 picosecond limit (≈9.22e18 ps ≈ 9.22e6 s).
		// 2^63 = 9223372036854775808; the largest float64 below it is
		// 9223372036854774784.
		{"9223372036854774784ps", 9223372036854774784, true},
		{"-9223372036854774784ps", -9223372036854774784, true},
		{"9223372036854775808ps", 0, false},  // exactly 2^63
		{"-9223372036854775808ps", 0, false}, // exactly -2^63
		{"1e19ps", 0, false},
		{"-1e19ps", 0, false},
		{"1e16", 0, false}, // bare ns: 1e19 ps, overflows
		{"9.3e9ms", 0, false},
		{"1e300", 0, false},
		{"-1e300ns", 0, false},
		{"inf", 0, false},
		{"-inf", 0, false},
		{"+Inf ns", 0, false},
		{"nan", 0, false},
		{"NaN ps", 0, false},

		// Largest values that survive each unit multiplier.
		{"9.2e18ps", 9200000000000000000, true},
		{"9.2e15", 9200000000000000000, true}, // bare = ns
		{"9.2e12us", 9200000000000000000, true},
		{"9.2e9ms", 9200000000000000000, true},

		// Whitespace and case tolerance at the boundaries.
		{"  -2.5 NS ", -2500, true},
		{"10 PS", 10, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Parse(%q) = %d, %v; want %d, nil", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Parse(%q) = %d, want error", c.in, got)
		}
	}
}

// TestParseUnitRoundTrip re-parses every Time's String rendering with an
// explicit "ns" suffix appended — the rendering is in nanoseconds — and
// with each coarser unit after rescaling, checking exact round trips.
func TestParseUnitRoundTrip(t *testing.T) {
	times := []Time{0, 1, -1, 999, -999, 1000, 2500, -2500, 6250,
		47500, 1000000, -1000000, 123456789, -123456789}
	for _, tm := range times {
		for _, suffix := range []string{"", "ns", " ns", "NS"} {
			in := tm.String() + suffix
			got, err := Parse(in)
			if err != nil || got != tm {
				t.Errorf("Parse(%q) = %d, %v; want %d", in, got, err, tm)
			}
		}
	}
	// ps round trip: integer picosecond rendering is always exact.
	for _, tm := range times {
		in := fmt.Sprintf("%dps", int64(tm))
		got, err := Parse(in)
		if err != nil || got != tm {
			t.Errorf("Parse(%q) = %d, %v; want %d", in, got, err, tm)
		}
	}
}

// TestStringParseAgreement checks that String never renders something
// Parse rejects, across sign, magnitude and fractional-digit classes.
func TestStringParseAgreement(t *testing.T) {
	for _, tm := range []Time{0, 1, 10, 100, 1000, 1001, 1010, 1100,
		-1, -10, -100, -999, 999999999999, -999999999999} {
		s := tm.String()
		if strings.ContainsAny(s, "eE") {
			t.Errorf("Time(%d).String() = %q uses scientific notation", tm, s)
		}
		got, err := Parse(s)
		if err != nil || got != tm {
			t.Errorf("Parse(String(%d)) = %d, %v", tm, got, err)
		}
	}
}
