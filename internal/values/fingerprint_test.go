package values

import (
	"sync"
	"testing"

	"scaldtv/internal/tick"
)

// TestFingerprintCanonical: semantically equal waveforms built with
// different segmentations fingerprint identically.
func TestFingerprintCanonical(t *testing.T) {
	p := 50 * tick.NS
	a := Const(p, V0).Paint(10*tick.NS, 20*tick.NS, V1)
	// The same function assembled from split spans painted separately.
	b := Const(p, V0).
		Paint(10*tick.NS, 15*tick.NS, V1).
		Paint(15*tick.NS, 20*tick.NS, V1)
	if !a.Equal(b) {
		t.Fatal("test waveforms should be semantically equal")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("equal waveforms fingerprint differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	// A hand-built unnormalized segment list (adjacent equal values) still
	// matches its normalized equivalent.
	c := Waveform{Period: p, Segs: []Segment{
		{V: V0, W: 10 * tick.NS}, {V: V1, W: 7 * tick.NS}, {V: V1, W: 3 * tick.NS}, {V: V0, W: 30 * tick.NS},
	}}
	if c.Fingerprint() != a.Fingerprint() {
		t.Error("unnormalized segmentation changes the fingerprint")
	}
}

// TestFingerprintSensitivity: the fingerprint distinguishes period, skew
// and value changes.
func TestFingerprintSensitivity(t *testing.T) {
	p := 50 * tick.NS
	base := Const(p, V0).Paint(10*tick.NS, 20*tick.NS, V1)
	variants := []Waveform{
		Const(p, V0).Paint(10*tick.NS, 21*tick.NS, V1),   // wider pulse
		Const(p, V0).Paint(11*tick.NS, 20*tick.NS, V1),   // shifted pulse
		Const(p, V0).Paint(10*tick.NS, 20*tick.NS, VC),   // different value
		Const(2*p, V0).Paint(10*tick.NS, 20*tick.NS, V1), // different period
		base.WithSkew(tick.NS),                           // different skew
	}
	for i, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d fingerprints like the base waveform", i)
		}
	}
}

// TestInternerDedup: Equal waveforms share one canonical copy and handle;
// distinct waveforms get distinct handles.
func TestInternerDedup(t *testing.T) {
	p := 50 * tick.NS
	in := NewInterner()
	a := Const(p, VS).Paint(5*tick.NS, 9*tick.NS, VC)
	b := Const(p, VS).Paint(5*tick.NS, 7*tick.NS, VC).Paint(7*tick.NS, 9*tick.NS, VC)
	ca, ida := in.Intern(a)
	cb, idb := in.Intern(b)
	if ida != idb {
		t.Errorf("equal waveforms interned to different handles %d, %d", ida, idb)
	}
	if &ca.Segs[0] != &cb.Segs[0] {
		t.Error("equal waveforms do not share segment storage after interning")
	}
	_, idc := in.Intern(a.WithSkew(tick.NS))
	if idc == ida {
		t.Error("distinct waveforms share a handle")
	}
	if unique, shared := in.Stats(); unique != 2 || shared != 1 {
		t.Errorf("stats = (%d unique, %d shared), want (2, 1)", unique, shared)
	}
}

// TestInternerHandleIsIdentity: handle equality must coincide with
// semantic equality over a batch of related waveforms.
func TestInternerHandleIsIdentity(t *testing.T) {
	p := 50 * tick.NS
	in := NewInterner()
	var waves []Waveform
	for s := tick.Time(0); s < 10; s++ {
		waves = append(waves, Const(p, V0).Paint(s*tick.NS, (s+5)*tick.NS, V1))
		waves = append(waves, Const(p, V0).Paint(s*tick.NS, (s+5)*tick.NS, V1)) // duplicate
	}
	ids := make([]uint64, len(waves))
	for i, w := range waves {
		_, ids[i] = in.Intern(w)
	}
	for i := range waves {
		for j := range waves {
			if got, want := ids[i] == ids[j], waves[i].Equal(waves[j]); got != want {
				t.Fatalf("handle equality (%v) disagrees with Equal (%v) for %v vs %v",
					got, want, waves[i], waves[j])
			}
		}
	}
}

// TestInternerConcurrent hammers one table from many goroutines; run with
// -race.  Every goroutine interning the same value must see the same
// handle.
func TestInternerConcurrent(t *testing.T) {
	p := 50 * tick.NS
	in := NewInterner()
	const goroutines = 8
	results := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := tick.Time(0); s < 20; s++ {
				_, id := in.Intern(Const(p, V0).Paint(s*tick.NS, (s+3)*tick.NS, VC))
				results[g] = append(results[g], id)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d saw handle %d for waveform %d, goroutine 0 saw %d",
					g, results[g][i], i, results[0][i])
			}
		}
	}
	if unique, _ := in.Stats(); unique != 20 {
		t.Errorf("unique = %d, want 20", unique)
	}
}
