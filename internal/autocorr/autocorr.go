// Package autocorr automates the correlation fix of §4.2.3.  The Timing
// Verifier reasons in absolute times, so a register fed back from its own
// output through a skewed clock buffer draws a false hold error (Fig 4-1);
// the paper's remedy is a designer-inserted fictitious CORR delay at least
// as long as the clock skew (Fig 4-2), and it closes with "it would be
// preferable if a simple method could be devised to automatically solve
// this problem".  This package is that method: it finds storage elements
// whose data cone feeds back from their own outputs, computes the clock
// path's delay uncertainty, and splices the CORR delay into exactly the
// feedback branches.
package autocorr

import (
	"fmt"

	"scaldtv/internal/assertion"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// Insertion records one automatic CORR placement.
type Insertion struct {
	Storage string    // the storage element protected
	Via     string    // the feedback net the delay was spliced into
	Delay   tick.Time // the fictitious delay inserted (= clock uncertainty)
}

// Apply analyses the design, splices CORR delays into register feedback
// paths, and returns what it did.  The design is modified in place and
// revalidated.
func Apply(d *netlist.Design) ([]Insertion, error) {
	a := &analyzer{d: d, uncertainty: map[netlist.NetID]tick.Time{}}
	var plans []plan
	for pi := range d.Prims {
		p := &d.Prims[pi]
		if !p.Kind.IsStorage() {
			continue
		}
		ckConn := p.In[0].Bits[0]
		u := a.clockUncertainty(ckConn)
		if u <= 0 {
			continue
		}
		// Which first-hop connections out of this storage element's
		// outputs lead back into its own data port?
		dataNets := map[netlist.NetID]bool{}
		for _, c := range p.In[1].Bits {
			dataNets[c.Net] = true
		}
		outNets := map[netlist.NetID]bool{}
		for _, port := range p.Out {
			for _, o := range port.Bits {
				outNets[o] = true
			}
		}
		for o := range outNets {
			for _, sinkPrim := range d.Nets[o].Fanout {
				sp := &d.Prims[sinkPrim]
				if sp.Kind.IsChecker() || sp.Kind.IsStorage() {
					continue
				}
				if a.reaches(sinkPrim, dataNets, map[netlist.PrimID]bool{}) {
					plans = append(plans, plan{prim: netlist.PrimID(pi), sink: sinkPrim, net: o, delay: u})
				}
			}
		}
	}
	return a.splice(plans)
}

type plan struct {
	prim  netlist.PrimID // the protected storage element
	sink  netlist.PrimID // the comb element whose input is spliced
	net   netlist.NetID  // the feedback net
	delay tick.Time
}

type analyzer struct {
	d           *netlist.Design
	uncertainty map[netlist.NetID]tick.Time
}

// clockUncertainty accumulates the delay spread along the clock's
// combinational path back to its source, plus the source's assertion skew
// and the interconnection spread at the storage element's pin.
func (a *analyzer) clockUncertainty(c netlist.Conn) tick.Time {
	dir, _ := c.Directives.Head()
	u := a.d.WireDelay(c.Net, dir).Width() + a.netUncertainty(c.Net, map[netlist.NetID]bool{})
	return u
}

func (a *analyzer) netUncertainty(n netlist.NetID, visiting map[netlist.NetID]bool) tick.Time {
	if u, ok := a.uncertainty[n]; ok {
		return u
	}
	if visiting[n] {
		return 0 // combinational loop: reported elsewhere
	}
	visiting[n] = true
	defer delete(visiting, n)

	net := &a.d.Nets[n]
	var u tick.Time
	if net.Driver == netlist.NoDriver {
		if net.Assert != nil &&
			(net.Assert.Kind == assertion.Clock || net.Assert.Kind == assertion.PrecisionClock) {
			env := a.d.Env()
			skew := env.ClockSkew
			if net.Assert.Kind == assertion.PrecisionClock {
				skew = env.PrecisionSkew
			}
			if net.Assert.Skew != nil {
				skew = *net.Assert.Skew
			}
			u = skew.Width()
		}
	} else {
		p := &a.d.Prims[net.Driver]
		if !p.Kind.IsStorage() && !p.Kind.IsChecker() {
			u = p.Delay.Width()
			if p.RF != nil {
				u = p.RF.Envelope().Width()
			}
			var worst tick.Time
			for _, port := range p.In {
				for _, ic := range port.Bits {
					dir, _ := ic.Directives.Head()
					w := a.d.WireDelay(ic.Net, dir).Width() + a.netUncertainty(ic.Net, visiting)
					worst = max(worst, w)
				}
			}
			u += worst
			if gd, _ := firstDirective(p); gd.ZeroesGate() {
				// De-skewed gating (§2.6): the clock timing refers to the
				// gate output; no uncertainty accumulates here.
				u = 0
			}
		}
	}
	a.uncertainty[n] = u
	return u
}

func firstDirective(p *netlist.Prim) (assertion.Directive, bool) {
	for _, port := range p.In {
		for _, c := range port.Bits {
			if !c.Directives.Empty() {
				d, _ := c.Directives.Head()
				return d, true
			}
		}
	}
	return assertion.DirEvaluate, false
}

// reaches reports whether the output cone of prim pi reaches any of the
// target nets through combinational logic.
func (a *analyzer) reaches(pi netlist.PrimID, targets map[netlist.NetID]bool, seen map[netlist.PrimID]bool) bool {
	if seen[pi] {
		return false
	}
	seen[pi] = true
	p := &a.d.Prims[pi]
	for _, port := range p.Out {
		for _, o := range port.Bits {
			if targets[o] {
				return true
			}
			for _, next := range a.d.Nets[o].Fanout {
				np := &a.d.Prims[next]
				if np.Kind.IsStorage() {
					// The feedback must enter the *data* port directly;
					// reaching another storage element ends the path.
					continue
				}
				if np.Kind.IsChecker() {
					continue
				}
				if a.reaches(next, targets, seen) {
					return true
				}
			}
		}
	}
	// Direct connection: one of this prim's outputs IS a target — handled
	// above; additionally the prim may drive a net that a target conn
	// reads (same thing).  Also check whether any output net equals a
	// target reached via zero hops.
	return false
}

// splice inserts the planned CORR buffers and revalidates the design.
func (a *analyzer) splice(plans []plan) ([]Insertion, error) {
	var out []Insertion
	done := map[[2]int32]bool{} // (sink, net) pairs already spliced
	for _, pl := range plans {
		key := [2]int32{int32(pl.sink), int32(pl.net)}
		if done[key] {
			continue
		}
		done[key] = true
		d := a.d
		origName := d.Nets[pl.net].Name
		name := fmt.Sprintf("%s/AUTOCORR %d", d.Nets[pl.net].Base, len(out))
		newID, err := d.NewNet(name, name)
		if err != nil {
			return out, fmt.Errorf("autocorr: %v", err)
		}
		// The fictitious delay element.
		d.Prims = append(d.Prims, netlist.Prim{
			Kind:  netlist.KBuf,
			Name:  fmt.Sprintf("AUTOCORR %d (%s)", len(out), d.Prims[pl.prim].Name),
			Width: 1,
			Delay: tick.Range{Min: pl.delay, Max: pl.delay},
			In:    []netlist.Port{{Name: "I0", Bits: []netlist.Conn{{Net: pl.net}}}},
			Out:   []netlist.OutPort{{Name: "O", Bits: []netlist.NetID{newID}}},
		})
		// Redirect the feedback sink's connections from the original net
		// to the delayed copy.
		sink := &d.Prims[pl.sink]
		for portIdx := range sink.In {
			for bitIdx := range sink.In[portIdx].Bits {
				if sink.In[portIdx].Bits[bitIdx].Net == pl.net {
					sink.In[portIdx].Bits[bitIdx].Net = newID
				}
			}
		}
		out = append(out, Insertion{
			Storage: d.Prims[pl.prim].Name,
			Via:     origName,
			Delay:   pl.delay,
		})
	}
	if len(out) > 0 {
		a.d.RebuildFanout()
		if err := a.d.Check(); err != nil {
			return out, fmt.Errorf("autocorr: design invalid after splicing: %v", err)
		}
	}
	return out, nil
}
