package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scaldtv"
	"scaldtv/internal/gen"
	"scaldtv/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestVerifyStoreProvenance drives POST /v1/verify through the three
// provenance tiers: a first-ever design runs cold, repeating it answers
// from the store without engine work, and a parameter edit warm-starts.
// The body is byte-identical to the storeless server in every tier;
// provenance travels only in the X-Scaldtv-Provenance header.
func TestVerifyStoreProvenance(t *testing.T) {
	st := testStore(t)
	s, ts := newTestServer(t, Config{Store: st})
	src := sessSource(2)
	want := cliJSON(t, src, scaldtv.Options{})

	resp, got := post(t, ts.URL+"/v1/verify?lib=1", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, got)
	}
	if p := resp.Header.Get("X-Scaldtv-Provenance"); p != "cold" {
		t.Errorf("cold: provenance header %q", p)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cold body differs from scaldtv -json")
	}

	resp, got = post(t, ts.URL+"/v1/verify?lib=1", src)
	if p := resp.Header.Get("X-Scaldtv-Provenance"); p != "cached" {
		t.Errorf("repeat: provenance header %q, want cached", p)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cached body differs from the cold body\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if n := s.met.storeHits.Load(); n != 1 {
		t.Errorf("store hit counter = %d, want 1", n)
	}

	// Same structure, slower buffer: the store warm-starts from the
	// persisted snapshot and re-verifies only the diff cone.
	edited := sessSource(3)
	resp, got = post(t, ts.URL+"/v1/verify?lib=1", edited)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edited: status %d: %s", resp.StatusCode, got)
	}
	if p := resp.Header.Get("X-Scaldtv-Provenance"); p != "warm" {
		t.Errorf("edited: provenance header %q, want warm", p)
	}
	if wantEd := cliJSON(t, edited, scaldtv.Options{}); !bytes.Equal(got, wantEd) {
		t.Errorf("warm body differs from scaldtv -json for the edited source")
	}
	if n := s.met.storeWarm.Load(); n != 1 {
		t.Errorf("store warm counter = %d, want 1", n)
	}

	// The new counters are exported.
	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, line := range []string{"scaldtvd_store_hits_total 1", "scaldtvd_store_warm_total 1"} {
		if !strings.Contains(string(body), line) {
			t.Errorf("metrics missing %q:\n%s", line, body)
		}
	}
}

// TestStoreSurvivesRestart is the daemon-restart contract: a second
// server over the same store directory answers a previously verified
// design from the store — byte-identical — and creates sessions from
// the persisted state instead of running the engine cold.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := sessSource(2)
	want := cliJSON(t, src, scaldtv.Options{})

	_, ts1 := newTestServer(t, Config{Store: st1})
	if resp, got := post(t, ts1.URL+"/v1/verify?lib=1", src); resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("first server cold verify failed: status %d", resp.StatusCode)
	}
	ts1.Close()

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Store: st2})
	resp, got := post(t, ts2.URL+"/v1/verify?lib=1", src)
	if p := resp.Header.Get("X-Scaldtv-Provenance"); p != "cached" {
		t.Errorf("restarted server provenance %q, want cached", p)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("restarted server body differs from the original\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Session create on the restarted server restores the snapshot.
	resp, body := post(t, ts2.URL+"/v1/sessions?lib=1", src)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"provenance": "cached"`) {
		t.Errorf("session create envelope does not carry cached provenance:\n%s", body)
	}
	// The restored session must still serve the byte-identical report.
	var env sessionEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	resp, rep := do(t, http.MethodGet, ts2.URL+"/v1/sessions/"+env.Session+"/report", "")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(rep, want) {
		t.Errorf("restored session report differs (status %d)", resp.StatusCode)
	}

	// …and keeps verifying incrementally after an edit.
	resp, body = do(t, http.MethodPut, ts2.URL+"/v1/sessions/"+env.Session+"/design?lib=1", sessSource(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"incremental": true`) {
		t.Errorf("edit after restore was not incremental:\n%s", body)
	}
}

// BenchmarkWarmStartVerify quantifies the store fast path on the
// paper's 1003-chip tier: the same POST /v1/verify request served cold
// (full relaxation per request) versus from the persistent store (one
// directory probe plus a checksum pass).  The store-hit tier is the
// headline number for the PR's ≥10x acceptance bound.
func BenchmarkWarmStartVerify(b *testing.B) {
	src := []byte(gen.Source(gen.Config{Chips: 1003}))
	drive := func(b *testing.B, s *Server, wantProvenance string) {
		b.Helper()
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/verify", bytes.NewReader(src))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			if p := w.Header().Get("X-Scaldtv-Provenance"); p != wantProvenance {
				b.Fatalf("provenance %q, want %q", p, wantProvenance)
			}
		}
	}
	b.Run("chips=1003/cold", func(b *testing.B) {
		drive(b, New(Config{Options: scaldtv.Options{Workers: 1}}), "")
	})
	b.Run("chips=1003/storehit", func(b *testing.B) {
		st, err := store.Open(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		s := New(Config{Options: scaldtv.Options{Workers: 1}, Store: st})
		// Seed the store with the one cold run, outside the timer.
		req := httptest.NewRequest(http.MethodPost, "/v1/verify", bytes.NewReader(src))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("seed: status %d", w.Code)
		}
		drive(b, s, "cached")
	})
}
