package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testEntry(key, structFP uint64, tag string) *Entry {
	return &Entry{
		Key:      key,
		StructFP: structFP,
		SrcKey:   key ^ 0x5eed, // distinct from Key, deterministic per entry
		Source:   "design " + tag,
		Report:   []byte(`{"tag":"` + tag + `"}`),
		State:    bytes.Repeat([]byte(tag), 8),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry(0x1111, 0xaaaa, "one")
	if err := st.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(0x1111)
	if !ok {
		t.Fatal("exact lookup missed")
	}
	if got.Key != want.Key || got.StructFP != want.StructFP || got.SrcKey != want.SrcKey ||
		got.Source != want.Source || !bytes.Equal(got.Report, want.Report) || !bytes.Equal(got.State, want.State) {
		t.Errorf("round trip mangled the entry: %+v", got)
	}
	if _, ok := st.Get(0x2222); ok {
		t.Error("lookup of an absent key hit")
	}
	// Source-key lookup: hit requires both the key and the exact text.
	if got, ok := st.GetBySource(want.SrcKey, want.Source); !ok || got.Key != want.Key {
		t.Error("source-key lookup missed a stored entry")
	}
	if _, ok := st.GetBySource(want.SrcKey, "design other"); ok {
		t.Error("source-key lookup hit with mismatched source text")
	}
	if _, ok := st.GetBySource(0x7777, want.Source); ok {
		t.Error("lookup of an absent source key hit")
	}
	// Overwriting the same key is idempotent, not additive.
	if err := st.Put(want); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Errorf("store holds %d entries after re-put, want 1", st.Len())
	}
}

func TestStoreNearestPrefersNewest(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	old := testEntry(0x1, 0xaaaa, "old")
	mid := testEntry(0x2, 0xbbbb, "mid") // different structure: never returned
	new := testEntry(0x3, 0xaaaa, "new")
	for _, e := range []*Entry{old, mid, new} {
		if err := st.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Pin distinct mtimes — Put order within one test can land in the
	// same filesystem tick.
	base := time.Now().Add(-time.Hour)
	for i, e := range []*Entry{old, mid, new} {
		p := filepath.Join(st.Dir(), blobName(e.StructFP, e.Key, e.SrcKey))
		if err := os.Chtimes(p, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := st.Nearest(0xaaaa)
	if !ok {
		t.Fatal("nearest lookup missed")
	}
	if got.Key != new.Key {
		t.Errorf("nearest returned key %#x, want the newest %#x", got.Key, new.Key)
	}
	if _, ok := st.Nearest(0xcccc); ok {
		t.Error("nearest hit for an unknown structure")
	}
}

func TestStoreCorruptBlobIsAMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(0x42, 0xdead, "x")
	if err := st.Put(e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, blobName(e.StructFP, e.Key, e.SrcKey))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flipped byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"wrong version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(blobMagic)] = 0xee // version field — checksum recomputed below
			body := c[:len(c)-8]
			return binary_le_put(body)
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			if err := os.WriteFile(path, c.mut(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Get(e.Key); ok {
				t.Error("corrupt blob served as a hit")
			}
			if _, ok := st.Nearest(e.StructFP); ok {
				t.Error("corrupt blob served as a nearest hit")
			}
			if _, ok := st.GetBySource(e.SrcKey, e.Source); ok {
				t.Error("corrupt blob served as a source-key hit")
			}
		})
	}
}

// binary_le_put re-appends a valid checksum, so the "wrong version" case
// tests the version gate rather than the checksum gate.
func binary_le_put(body []byte) []byte {
	out := append([]byte(nil), body...)
	sum := fnv64(out)
	for i := 0; i < 8; i++ {
		out = append(out, byte(sum>>(8*i)))
	}
	return out
}

func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	// Budget fits roughly two of the ~100-byte test entries.
	st, err := Open(dir, 220)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	var names []string
	for i := 0; i < 5; i++ {
		e := testEntry(uint64(i+1), uint64(0x100+i), "gc")
		if err := st.Put(e); err != nil {
			t.Fatal(err)
		}
		name := blobName(e.StructFP, e.Key, e.SrcKey)
		names = append(names, name)
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, name), mt, mt); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	// Trigger one more GC pass with pinned mtimes in place.
	last := testEntry(0x99, 0x999, "gc")
	if err := st.Put(last); err != nil {
		t.Fatal(err)
	}
	if n := st.Len(); n >= 6 {
		t.Errorf("GC kept all %d entries over a 220-byte budget", n)
	}
	// The newest write always survives its own GC pass.
	if _, err := os.Stat(filepath.Join(dir, blobName(last.StructFP, last.Key, last.SrcKey))); err != nil {
		t.Errorf("the just-written entry was evicted: %v", err)
	}
	// The oldest pinned entry goes first.
	if _, err := os.Stat(filepath.Join(dir, names[0])); err == nil {
		t.Error("oldest entry survived GC while the budget was exceeded")
	}
}
