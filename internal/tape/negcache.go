package tape

import (
	"sync"
	"sync/atomic"
)

// negShards is the number of independent lock stripes, mirroring the
// evaluation cache's striping so concurrent case workers checking
// different sites rarely share a lock.  Must be a power of two.
const negShards = 32

// NegCache is a striped set of constraint-site keys whose full check
// produced no violations and no margins — the only outcomes worth
// memoizing across runs, because an empty outcome is independent of the
// instance and net names and the case label that appear in violation
// messages.  Keys are exact (the evaluation-memo key plus the checker
// intervals), so membership implies the full check would return nothing.
type NegCache struct {
	shards [negShards]negShard
	hits   atomic.Int64
	misses atomic.Int64
}

type negShard struct {
	mu sync.RWMutex
	m  map[string]struct{}
}

// NewNegCache returns an empty site cache.
func NewNegCache() *NegCache {
	c := &NegCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]struct{})
	}
	return c
}

// shard routes a key to its stripe by FNV-1a over the key bytes.
func (c *NegCache) shard(key []byte) *negShard {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return &c.shards[h&(negShards-1)]
}

// Known reports whether the site key is recorded as clean.
func (c *NegCache) Known(key []byte) bool {
	sh := c.shard(key)
	sh.mu.RLock()
	_, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ok
}

// Add records a clean site key.
func (c *NegCache) Add(key []byte) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.m[string(key)] = struct{}{}
	sh.mu.Unlock()
}

// Stats reports hits, misses and resident entries.
func (c *NegCache) Stats() (hits, misses, entries int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return int(c.hits.Load()), int(c.misses.Load()), entries
}
