package verify

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"scaldtv/internal/assertion"
	"scaldtv/internal/eval"
	"scaldtv/internal/netlist"
	"scaldtv/internal/tape"
	"scaldtv/internal/tick"
	"scaldtv/internal/values"
)

// A Snapshot is the serializable image of a Verifier's retained fixed
// point: for every case, the converged per-net signals plus the sparse
// side tables (alternate clock outputs, wired-OR driver outputs) the
// relaxation committed.  It is deliberately free of process-local
// pointers — no interner handles, no memo-cache entries, no *Design —
// so it can cross a process boundary; Restore re-interns every waveform
// and rebuilds the derived tables (case mappings, wired-OR slots,
// constraint-site memos) from the design it is given.
//
// A Snapshot is taken only from a converged result: a run that hit the
// pass cap retains waveforms that are not a fixed point, which Reverify
// already refuses to resume, so Verifier.Snapshot refuses to persist
// them.
type Snapshot struct {
	// DesignFP is netlist.Fingerprint of the verified design.  Restore
	// rejects any design that hashes differently; the store's nearest-
	// match lookups recompile the stored source instead of forcing a
	// snapshot onto an edited design.
	DesignFP uint64
	Cases    []CaseSnapshot
}

// CaseSnapshot is one case's converged state.
type CaseSnapshot struct {
	Label     string
	Events    int // relaxation work counters of the run that converged
	PrimEvals int

	Sigs []eval.Signal // per net, in NetID order

	AltOut   []NetWave  // computed outputs of pinned nets (sparse)
	WiredOut []SlotWave // wired-OR per-driver outputs (sparse, by slot)
}

// NetWave pairs a net with a waveform.
type NetWave struct {
	Net  netlist.NetID
	Wave values.Waveform
}

// SlotWave pairs a wired-OR driver slot — the deterministic index
// initVerifier assigns each (net, driver) pair — with that driver's
// latest output.
type SlotWave struct {
	Slot int
	Wave values.Waveform
}

// snapshotVersion is bumped on any change to the binary layout; decoders
// reject other versions so a stale blob degrades to a cache miss, never
// a misread.
const snapshotVersion = 1

// snapshotMagic guards against feeding arbitrary files to the decoder.
var snapshotMagic = []byte("SCTVSNAP")

// Snapshot captures the session's retained fixed point.  It fails when
// the session has no retained state (no Verify yet, or the last run was
// canceled) and when the last result contains a convergence violation.
func (V *Verifier) Snapshot() (*Snapshot, error) {
	if V.perCase == nil || V.res == nil {
		return nil, fmt.Errorf("verify: no retained state to snapshot")
	}
	for _, viol := range V.res.Violations {
		if viol.Kind == ConvergenceViolation {
			return nil, fmt.Errorf("verify: refusing to snapshot a non-converged result")
		}
	}
	snap := &Snapshot{
		DesignFP: netlist.Fingerprint(V.d),
		Cases:    make([]CaseSnapshot, len(V.perCase)),
	}
	for ci, rc := range V.perCase {
		cs := CaseSnapshot{
			Label:     V.cases[ci].Label,
			Events:    V.res.Cases[ci].Events,
			PrimEvals: V.res.Cases[ci].PrimEvals,
			Sigs:      append([]eval.Signal(nil), rc.sigs...),
		}
		for id, set := range rc.altOutSet {
			if set {
				cs.AltOut = append(cs.AltOut, NetWave{Net: netlist.NetID(id), Wave: rc.altOutW[id]})
			}
		}
		for slot, set := range rc.wiredOutSet {
			if set {
				cs.WiredOut = append(cs.WiredOut, SlotWave{Slot: slot, Wave: rc.wiredOutW[slot]})
			}
		}
		snap.Cases[ci] = cs
	}
	return snap, nil
}

// Restore rebuilds a live Verifier session from a snapshot of the given
// design.  The restored session is equivalent to the one that took the
// snapshot: its Result carries the same violations, margins, undefined
// listing and kept waveforms (so reports are byte-identical), and
// subsequent Reverify/Update calls resume incrementally from the
// restored fixed point.  Interner handles and the evaluation memo are
// process-local, so they are rebuilt from scratch — every waveform is
// re-interned as it is installed.
//
// Violations, margins and the constraint-site memos are recomputed by
// re-running the (cheap, relaxation-free) checking phase over the
// restored waveforms; this doubles as an integrity check, since a
// snapshot that decodes but carries wrong waveforms cannot silently
// poison later incremental runs with stale memoized outcomes.
func Restore(d *netlist.Design, opts Options, snap *Snapshot) (*Verifier, error) {
	if snap == nil {
		return nil, fmt.Errorf("verify: Restore with nil snapshot")
	}
	if got := netlist.Fingerprint(d); got != snap.DesignFP {
		return nil, fmt.Errorf("verify: snapshot is of a different design (fingerprint %016x, want %016x)", snap.DesignFP, got)
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	cases := d.Cases
	if len(cases) == 0 {
		cases = []netlist.Case{{Label: ""}}
	}
	if len(cases) != len(snap.Cases) {
		return nil, fmt.Errorf("verify: snapshot has %d cases, design has %d", len(snap.Cases), len(cases))
	}

	V := NewVerifier(d, opts)
	buildStart := time.Now()
	var prog *tape.Program
	if opts.useTape() {
		p, err := tape.For(d)
		if err != nil {
			return nil, err
		}
		if err := p.Refresh(d); err != nil {
			return nil, err
		}
		prog = p
		V.intern, V.cache = p.Intern, p.Evals
	}
	v0, res, err := initVerifier(d, opts, V.intern, V.cache, prog)
	if err != nil {
		return nil, err
	}
	res.Stats.Tape = prog != nil

	perCase := make([]*verifier, len(cases))
	for ci := range cases {
		cs := &snap.Cases[ci]
		if cs.Label != cases[ci].Label {
			return nil, fmt.Errorf("verify: snapshot case %d is %q, design declares %q", ci, cs.Label, cases[ci].Label)
		}
		if len(cs.Sigs) != len(d.Nets) {
			return nil, fmt.Errorf("verify: snapshot case %q has %d signals, design has %d nets", cs.Label, len(cs.Sigs), len(d.Nets))
		}
		rc := v0.clone()
		rc.caseMap, err = caseMapping(d, cases[ci])
		if err != nil {
			return nil, err
		}
		for i, sig := range cs.Sigs {
			rc.setSig(netlist.NetID(i), sig)
		}
		for _, nw := range cs.AltOut {
			if nw.Net < 0 || int(nw.Net) >= len(d.Nets) {
				return nil, fmt.Errorf("verify: snapshot case %q pins net %d out of range", cs.Label, nw.Net)
			}
			rc.altOutW[nw.Net] = nw.Wave
			rc.altOutSet[nw.Net] = true
		}
		for _, sw := range cs.WiredOut {
			if sw.Slot < 0 || sw.Slot >= len(rc.wiredOutW) {
				return nil, fmt.Errorf("verify: snapshot case %q names wired-OR slot %d out of range", cs.Label, sw.Slot)
			}
			rc.wiredOutW[sw.Slot] = sw.Wave
			rc.wiredOutSet[sw.Slot] = true
		}

		// Re-run the checking phase to rebuild the per-site memo and the
		// result's violations and margins in check's canonical order.
		rc.sites = make([]siteChecks, len(d.Prims))
		viols := rc.check(cs.Label)
		cr := CaseResult{
			Label:      cs.Label,
			Events:     cs.Events,
			PrimEvals:  cs.PrimEvals,
			Violations: viols,
		}
		if opts.KeepWaves {
			cr.Waves = make([]values.Waveform, len(rc.sigs))
			for i, s := range rc.sigs {
				cr.Waves[i] = s.Wave
			}
		}
		res.Cases = append(res.Cases, cr)
		res.Violations = append(res.Violations, viols...)
		if opts.Margins {
			res.Margins = append(res.Margins, rc.margins...)
		}
		rc.margins = nil
		res.Stats.Events += cs.Events
		res.Stats.PrimEvals += cs.PrimEvals
		perCase[ci] = rc
	}

	res.Stats.Cases = len(cases)
	res.Stats.Workers = opts.workers(len(cases))
	opts.fillWavefrontStats(d, &res.Stats)
	if V.cache != nil {
		res.Stats.CacheHits, res.Stats.CacheMisses, _ = V.cache.Stats()
		res.Stats.Interned, res.Stats.Deduped = V.intern.Stats()
	}
	res.Stats.BuildTime = time.Since(buildStart)
	res.Stats.Cached = true
	V.cases, V.perCase, V.res = cases, perCase, res
	return V, nil
}

// Fingerprint returns the content address of a verification outcome: the
// design fingerprint mixed with every option that can influence the
// report — the resolved pass cap (runs with different caps can disagree
// on convergence) and the forced waveforms (they replace initial seeds).
// Workers, IntraWorkers, NoCache, KeepWaves and Margins are deliberately
// excluded: the JSON report is bit-identical across all of them (locked
// by TestJSONReportByteDeterminism), so runs differing only there share
// one cache entry.
func Fingerprint(d *netlist.Design, opts Options) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(x>>(8*i)))) * prime64
		}
	}
	mix(netlist.Fingerprint(d))
	mix(uint64(opts.passCap(len(d.Prims))))
	ids := make([]netlist.NetID, 0, len(opts.Force))
	for id := range opts.Force {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	mix(uint64(len(ids)))
	for _, id := range ids {
		mix(uint64(id))
		mix(opts.Force[id].Fingerprint())
	}
	// Result-affecting modes beyond the relaxation parameters: explore
	// rewrites the case list, statistical mode adds SiteProbs, analytic
	// mode pins the delays at a parameter point and adds MarginSurface.
	// Snapshots cannot carry any of those sections, so their results
	// must never collide with plain runs in the store (the scaldtv
	// driver additionally skips the store entirely for those modes).
	// The model contributes its canonical key string — "" for worst
	// case, "statistical" for the default grid — preserving the
	// fingerprint bytes of the former string-typed field.
	if opts.Explore {
		mix(1)
	} else {
		mix(0)
	}
	key := delayModelKey(opts.Delays)
	for _, b := range []byte(key) {
		mix(uint64(b))
	}
	mix(uint64(len(key)))
	return h
}

// encBuf appends the snapshot wire format: varint-coded integers and
// length-prefixed byte strings.
type encBuf struct{ b []byte }

func (e *encBuf) u(x uint64) { e.b = binary.AppendUvarint(e.b, x) }
func (e *encBuf) i(x int64)  { e.b = binary.AppendVarint(e.b, x) }
func (e *encBuf) str(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encBuf) wave(w values.Waveform) {
	e.i(int64(w.Period))
	e.i(int64(w.Skew))
	e.u(uint64(len(w.Segs)))
	for _, s := range w.Segs {
		e.b = append(e.b, byte(s.V))
		e.i(int64(s.W))
	}
}

// MarshalBinary encodes the snapshot in the versioned wire format.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	e := &encBuf{b: make([]byte, 0, 1024)}
	e.b = append(e.b, snapshotMagic...)
	e.u(snapshotVersion)
	e.u(s.DesignFP)
	e.u(uint64(len(s.Cases)))
	for i := range s.Cases {
		cs := &s.Cases[i]
		e.str(cs.Label)
		e.u(uint64(cs.Events))
		e.u(uint64(cs.PrimEvals))
		e.u(uint64(len(cs.Sigs)))
		for _, sig := range cs.Sigs {
			e.wave(sig.Wave)
			e.str(string(sig.Dirs))
		}
		e.u(uint64(len(cs.AltOut)))
		for _, nw := range cs.AltOut {
			e.u(uint64(nw.Net))
			e.wave(nw.Wave)
		}
		e.u(uint64(len(cs.WiredOut)))
		for _, sw := range cs.WiredOut {
			e.u(uint64(sw.Slot))
			e.wave(sw.Wave)
		}
	}
	return e.b, nil
}

// decBuf consumes the wire format, latching the first error: every read
// after a malformed field returns zero values, and the caller checks err
// once at the end.
type decBuf struct {
	b   []byte
	err error
}

func (d *decBuf) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("verify: snapshot decode: "+format, args...)
	}
}

func (d *decBuf) u() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

func (d *decBuf) i() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return x
}

// count reads a collection length and bounds it by the bytes remaining
// (each element costs at least min bytes), so corrupt input cannot force
// a huge allocation.
func (d *decBuf) count(min int) int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.b)/min)+1 {
		d.fail("implausible element count %d with %d bytes left", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *decBuf) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if n > len(d.b) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decBuf) wave() values.Waveform {
	var w values.Waveform
	w.Period = tick.Time(d.i())
	w.Skew = tick.Time(d.i())
	n := d.count(2)
	if d.err != nil {
		return w
	}
	if n > 0 {
		w.Segs = make([]values.Segment, n)
	}
	for i := 0; i < n; i++ {
		if d.err != nil {
			return w
		}
		if len(d.b) == 0 {
			d.fail("truncated segment")
			return w
		}
		w.Segs[i].V = values.Value(d.b[0])
		d.b = d.b[1:]
		w.Segs[i].W = tick.Time(d.i())
	}
	if d.err == nil {
		if err := w.Check(); err != nil {
			d.fail("invalid waveform: %v", err)
		}
	}
	return w
}

// UnmarshalSnapshot decodes a snapshot blob, rejecting wrong magic,
// unknown versions and malformed or truncated content.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("verify: snapshot decode: bad magic")
	}
	d := &decBuf{b: data[len(snapshotMagic):]}
	if v := d.u(); d.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("verify: snapshot decode: version %d, want %d", v, snapshotVersion)
	}
	s := &Snapshot{DesignFP: d.u()}
	nCases := d.count(1)
	for ci := 0; ci < nCases && d.err == nil; ci++ {
		var cs CaseSnapshot
		cs.Label = d.str()
		cs.Events = int(d.u())
		cs.PrimEvals = int(d.u())
		nSigs := d.count(4)
		if d.err == nil && nSigs > 0 {
			cs.Sigs = make([]eval.Signal, nSigs)
		}
		for i := 0; i < nSigs && d.err == nil; i++ {
			cs.Sigs[i].Wave = d.wave()
			cs.Sigs[i].Dirs = assertion.Directives(d.str())
		}
		nAlt := d.count(4)
		for i := 0; i < nAlt && d.err == nil; i++ {
			cs.AltOut = append(cs.AltOut, NetWave{Net: netlist.NetID(d.u()), Wave: d.wave()})
		}
		nWired := d.count(4)
		for i := 0; i < nWired && d.err == nil; i++ {
			cs.WiredOut = append(cs.WiredOut, SlotWave{Slot: int(d.u()), Wave: d.wave()})
		}
		s.Cases = append(s.Cases, cs)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("verify: snapshot decode: %d trailing bytes", len(d.b))
	}
	return s, nil
}
