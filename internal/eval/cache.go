// Evaluation memoization (the relaxation-loop hot path): a primitive
// evaluation is a pure function of the primitive's parameters and its
// processed input signals, so its output can be cached and reused — both
// when the relaxation loop revisits a primitive whose inputs have settled
// back to a previously-seen combination, and across the many structurally
// identical primitive instances of a regular design (the same economy that
// motivates the paper's vectored primitives, §3.3.2, applied between
// instances instead of between bits).
//
// Keys are exact, not probabilistic: every quantity Prim reads is encoded
// into the key, and input waveforms are represented by interned handles
// (values.Interner), whose equality coincides with semantic waveform
// equality even under fingerprint collisions.  A cache hit therefore
// returns a value bit-identical to what evaluation would have produced,
// which is what lets the verifier guarantee cached and uncached runs agree
// exactly.
package eval

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"scaldtv/internal/netlist"
	"scaldtv/internal/tick"
)

// WaveID returns the interned handle of a net's current waveform.  Handle
// equality must imply semantic waveform equality (values.Interner provides
// this).
type WaveID func(netlist.NetID) uint64

// cacheShards is the number of independent lock stripes.  Must be a power
// of two.  Keys are routed to a stripe by an FNV-1a hash of the key bytes,
// so concurrent workers looking up different primitives rarely share a
// lock.
const cacheShards = 32

// Cache memoizes Prim evaluations.  It is safe for concurrent use: the
// parallel case engine shares one cache across all case workers — and the
// intra-case wavefront shares it across level workers — so every worker
// starts from whatever the shared post-initialisation relaxation already
// computed.  The table is striped into cacheShards independently locked
// shards.  Stored output slices are treated as immutable by all callers.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]cacheEntry
}

// cacheEntry pairs one evaluation's outputs with their interned handles,
// so a hit's consumer can compare and store results by handle without
// re-hashing the waveforms.
type cacheEntry struct {
	outs []Signal
	ids  []uint64
}

// NewCache returns an empty evaluation cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

// shard routes a key to its stripe by FNV-1a over the key bytes.
func (c *Cache) shard(key []byte) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// Get looks up the outputs for a key built with AppendKey, returning the
// signals and their interned waveform handles.  The key is accepted as a
// byte slice so the caller can reuse one scratch buffer across lookups
// without allocating.
func (c *Cache) Get(key []byte) ([]Signal, []uint64, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	e, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.outs, e.ids, ok
}

// Put stores the outputs of one evaluation together with their interned
// handles (ids[i] is the handle of outs[i].Wave).  Neither slice may be
// modified afterwards.
func (c *Cache) Put(key []byte, outs []Signal, ids []uint64) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.m[string(key)] = cacheEntry{outs: outs, ids: ids}
	sh.mu.Unlock()
}

// NoteHit records a memoization hit served on the cache's behalf by a
// front-line structure (the tape's warm slots), so the hit/miss counters
// reflect every evaluation avoided, whichever layer avoided it.
func (c *Cache) NoteHit() { c.hits.Add(1) }

// Stats reports hits, misses and resident entries.
func (c *Cache) Stats() (hits, misses, entries int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return int(c.hits.Load()), int(c.misses.Load()), entries
}

// AppendKey appends the memoization key for evaluating p in the current
// signal state to buf and returns the extended slice.  The key covers
// everything Prim reads:
//
//   - the primitive's kind, width and delay parameters, and the period;
//   - per input bit, the processed-connection identity: the complement
//     rail, the resolved directive head and remainder (a pin directive
//     starts a fresh string, otherwise the incoming signal's continues),
//     the interconnection delay as resolved under that head, and the
//     interned handle of the input waveform.
//
// Two primitives with equal keys are therefore indistinguishable to Prim,
// whichever nets they are wired to, and share one cache entry.
func AppendKey(buf []byte, d *netlist.Design, p *netlist.Prim, get Getter, id WaveID) []byte {
	buf = append(buf, byte(p.Kind))
	buf = binary.AppendUvarint(buf, uint64(p.Width))
	buf = appendTime(buf, d.Period)
	buf = appendRange(buf, p.Delay)
	buf = appendRange(buf, p.SelectDelay)
	if p.RF != nil {
		buf = append(buf, 1)
		buf = appendRange(buf, p.RF.Rise)
		buf = appendRange(buf, p.RF.Fall)
	} else {
		buf = append(buf, 0)
	}
	for _, port := range p.In {
		buf = binary.AppendUvarint(buf, uint64(len(port.Bits)))
		for _, c := range port.Bits {
			sig := get(c.Net)
			dirs := sig.Dirs
			if !c.Directives.Empty() {
				dirs = c.Directives
			}
			head, rest := dirs.Head()
			flags := byte(0)
			if c.Invert {
				flags = 1
			}
			buf = append(buf, flags, byte(head))
			buf = binary.AppendUvarint(buf, uint64(len(rest)))
			buf = append(buf, string(rest)...)
			buf = appendRange(buf, d.WireDelay(c.Net, head))
			buf = binary.AppendUvarint(buf, id(c.Net))
		}
	}
	return buf
}

func appendTime(buf []byte, t tick.Time) []byte {
	return binary.AppendVarint(buf, int64(t))
}

func appendRange(buf []byte, r tick.Range) []byte {
	return appendTime(appendTime(buf, r.Min), r.Max)
}
