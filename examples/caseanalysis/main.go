// The case-analysis example of Fig 2-6 / §2.7: two multiplexers share one
// control signal, wired so the 10 ns extra delay is taken at most once.
// Verified in one symbolic pass the path looks like 40 ns; with the
// designer's two cases the true 30 ns delay emerges and the output
// assertion holds.
//
//	go run ./examples/caseanalysis
package main

import (
	"fmt"
	"log"

	"scaldtv"
)

const circuit = `
design "FIG 2-6 CASE ANALYSIS"
period 100ns
clockunit 1ns
defaultwire 0ns 0ns

buf  "DELAY A" delay=(10,10) ("INPUT .S5-104") -> (D1)
mux2 "MUX 1"   delay=(10,10) ("CONTROL SIGNAL .S0-100", "INPUT .S5-104", D1) -> (M1)
buf  "DELAY B" delay=(10,10) (M1) -> (D2)
mux2 "MUX 2"   delay=(10,10) ("CONTROL SIGNAL .S0-100", D2, M1) -> ("OUTPUT .S35-104")
`

const cases = `
case "CONTROL SIGNAL" = 0
case "CONTROL SIGNAL" = 1
`

func main() {
	fmt.Println("---- one symbolic pass, no case analysis (pessimistic 40 ns path) ----")
	run(circuit)

	fmt.Println("\n---- with the designer's two cases (true 30 ns delay, §2.7.1) ----")
	run(circuit + cases)
}

func run(src string) {
	res, err := scaldtv.VerifySource(src, scaldtv.Options{KeepWaves: true})
	if err != nil {
		log.Fatal(err)
	}
	for ci := range res.Cases {
		fmt.Printf("\ncase %d %s — %d events\n", ci, res.Cases[ci].Label, res.Cases[ci].Events)
		fmt.Print(scaldtv.TimingSummary(res, ci))
	}
	fmt.Println()
	fmt.Print(scaldtv.ErrorListing(res))
}
